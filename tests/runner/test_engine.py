"""Campaign engine tests: determinism, caching, dedup, error handling.

Pool tests use the cheap ``ablate-slot-split`` / ``schedulability``
experiments so the suite exercises real registry points without long
computations.
"""

import pytest

from repro.runner import (
    MAX_AUTO_BATCH,
    CampaignError,
    PointSpec,
    ProgressReporter,
    auto_batch_size,
    evaluate_batch,
    execute_points,
    run_campaign,
    sweep,
)

SPLIT_AXES = {"period": [3.0], "budget": [1.0], "pieces": [1, 2, 3, 4]}
SCHED_AXES = {"u_total": [0.8, 1.6], "n": [6], "rep": [0, 1]}


class TestRunCampaign:
    def test_results_align_with_specs(self):
        specs = [
            PointSpec("ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": k})
            for k in (4, 1, 2)
        ]
        campaign = run_campaign(specs)
        delays = [r["delay"] for r in campaign.results]
        assert delays[1] > delays[2] > delays[0]  # k=1 worst, k=4 best

    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_campaign([PointSpec("no-such-experiment", {})])

    def test_duplicates_evaluated_once(self):
        spec = PointSpec("ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2})
        campaign = run_campaign([spec, spec, spec])
        assert campaign.stats.total == 3
        assert campaign.stats.unique == 1
        assert campaign.results[0] == campaign.results[1] == campaign.results[2]

    def test_pool_matches_inline(self):
        inline = sweep("schedulability", SCHED_AXES, workers=1, master_seed=5)
        pooled = sweep("schedulability", SCHED_AXES, workers=2, master_seed=5)
        assert inline.to_json() == pooled.to_json()

    def test_submission_order_does_not_change_results(self):
        specs = [
            PointSpec("schedulability", {"u_total": 0.8, "n": 6, "rep": r})
            for r in range(3)
        ]
        forward = run_campaign(specs, master_seed=5)
        backward = run_campaign(list(reversed(specs)), master_seed=5)
        for spec, result in forward.rows():
            assert backward.results[backward.specs.index(spec)] == result

    def test_master_seed_changes_seeded_results(self):
        a = sweep("schedulability", SCHED_AXES, master_seed=0)
        b = sweep("schedulability", SCHED_AXES, master_seed=1)
        assert a.to_json() != b.to_json()

    def test_progress_reporter_sees_every_point(self):
        import io

        reporter = ProgressReporter(4, stream=io.StringIO())
        sweep("ablate-slot-split", SPLIT_AXES, progress=reporter)
        assert reporter.snapshot()["done"] == 4
        assert reporter.snapshot()["computed"] == 4


class TestBatching:
    def test_auto_batch_size_heuristic(self):
        # tiny campaigns stay per-point; huge ones cap for responsiveness
        assert auto_batch_size(0, 4) == 1
        assert auto_batch_size(12, 4) == 1
        assert auto_batch_size(5_000, 4) == 5_000 // 32
        assert auto_batch_size(1_000_000, 4) == MAX_AUTO_BATCH
        assert auto_batch_size(100, 0) == 1

    def test_evaluate_batch_matches_per_point_and_isolates_failures(self):
        ok_params = {"period": 3.0, "budget": 1.0, "pieces": 2}
        bad_params = {"period": 3.0, "budget": 1.0, "pieces": 0}
        outcomes, kernel_delta, telemetry_delta = evaluate_batch(
            (
                (
                    ("ablate-slot-split", ok_params),
                    ("ablate-slot-split", bad_params),
                    ("ablate-slot-split", ok_params),
                ),
                0,
            )
        )
        assert [ok for ok, _, _ in outcomes] == [True, False, True]
        # a failing point never poisons its batch mates
        assert outcomes[0][1] == outcomes[2][1]
        assert set(kernel_delta) == {"fast", "fallback"}
        assert all(v >= 0 for v in kernel_delta.values())
        # without the opt-in payload flag no collector is ever created
        assert telemetry_delta is None

    def test_evaluate_batch_ships_telemetry_when_asked(self):
        ok_params = {"period": 3.0, "budget": 1.0, "pieces": 2}
        outcomes, _kernel_delta, delta = evaluate_batch(
            ((("ablate-slot-split", ok_params),), 0, True)
        )
        assert [ok for ok, _, _ in outcomes] == [True]
        assert delta is not None
        assert delta["counters"].get("sim.events.pushed", 0) >= 0
        assert "point" in delta["phases"]
        assert delta["phases"]["point"][0] == 1

    @pytest.mark.parametrize("workers,batch", [(1, 3), (2, 3), (2, 64)])
    def test_batch_layout_covers_every_point_once(self, workers, batch):
        """Batch sizes that don't divide the point count still finish every
        point exactly once, whatever the (workers, batch) combination."""
        specs = [
            PointSpec(
                "ablate-slot-split",
                {"period": 3.0, "budget": 1.0, "pieces": 1, "rep": r},
            )
            for r in range(7)
        ]
        seen: list[str] = []
        sizes: list[int] = []

        def finish_batch(done):
            sizes.append(len(done))
            for spec, ok, _result, elapsed in done:
                assert ok and elapsed >= 0.0
                seen.append(spec.digest)

        effective = execute_points(
            specs, workers, 0, finish_batch, batch_size=batch
        )
        assert effective == batch
        assert sorted(seen) == sorted(s.digest for s in specs)
        assert all(size <= batch for size in sizes)

    def test_explicit_batch_sizes_are_bit_identical(self):
        baseline = sweep("schedulability", SCHED_AXES, master_seed=5).to_json()
        for workers, batch in [(1, 3), (2, 1), (2, 3), (2, 64)]:
            batched = sweep(
                "schedulability", SCHED_AXES,
                workers=workers, master_seed=5, batch_size=batch,
            )
            assert batched.to_json() == baseline
            assert batched.stats.batch_size == batch

    def test_sequential_raise_aborts_without_evaluating_batch_mates(self):
        """Inline (workers=1) execution surfaces a failing point at once:
        a raise-mode abort must not burn time evaluating the rest of the
        failing point's batch first."""
        bad = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 0}
        )
        good = PointSpec(
            "ablate-slot-split", {"period": 3.0, "budget": 1.0, "pieces": 2}
        )
        seen: list[str] = []

        def finish_batch(done):
            for spec, ok, result, _elapsed in done:
                seen.append(spec.digest)
                if not ok:
                    raise CampaignError(spec, result)

        with pytest.raises(CampaignError):
            execute_points([bad, good], 1, 0, finish_batch, batch_size=2)
        assert seen == [bad.digest]  # the batch mate was never touched

    def test_store_mode_survives_mixed_batches(self, tmp_path):
        """A failing point inside a batch is stored, its batch mates are
        still cached and returned."""
        axes = {"period": [3.0], "budget": [1.0], "pieces": [0, 2, 3, 4]}
        campaign = sweep(
            "ablate-slot-split", axes, on_error="store",
            cache_dir=tmp_path, batch_size=4,
        )
        assert "error" in campaign.results[0]
        assert campaign.stats.errors == 1
        again = sweep(
            "ablate-slot-split", axes, on_error="store",
            cache_dir=tmp_path, batch_size=2,
        )
        assert again.stats.cached == 3  # the failing point is never cached
        assert again.results == campaign.results


class TestCaching:
    def test_rerun_computes_nothing(self, tmp_path):
        first = sweep("schedulability", SCHED_AXES, master_seed=5, cache_dir=tmp_path)
        again = sweep("schedulability", SCHED_AXES, master_seed=5, cache_dir=tmp_path)
        assert first.stats.computed == 4
        assert again.stats.computed == 0
        assert again.stats.cached == 4
        assert first.to_json() == again.to_json()

    def test_extended_sweep_computes_only_new_points(self, tmp_path):
        small = sweep("schedulability", SCHED_AXES, master_seed=5, cache_dir=tmp_path)
        wider = sweep(
            "schedulability",
            {**SCHED_AXES, "u_total": [0.8, 1.6, 2.4]},
            master_seed=5,
            cache_dir=tmp_path,
        )
        assert wider.stats.cached == 4
        assert wider.stats.computed == 2
        # Old points keep their exact results inside the extended grid.
        for spec, result in small.rows():
            assert wider.results[wider.specs.index(spec)] == result

    def test_cache_respects_master_seed(self, tmp_path):
        sweep("schedulability", SCHED_AXES, master_seed=5, cache_dir=tmp_path)
        other = sweep("schedulability", SCHED_AXES, master_seed=6, cache_dir=tmp_path)
        assert other.stats.cached == 0
        assert other.stats.computed == 4


class TestErrors:
    BAD = {"period": [3.0], "budget": [1.0], "pieces": [0]}  # 0 pieces: invalid

    def test_raise_mode(self):
        with pytest.raises(CampaignError, match="ablate-slot-split"):
            sweep("ablate-slot-split", self.BAD)

    def test_store_mode_keeps_going_and_never_caches(self, tmp_path):
        axes = {"period": [3.0], "budget": [1.0], "pieces": [0, 2]}
        campaign = sweep(
            "ablate-slot-split", axes, on_error="store", cache_dir=tmp_path
        )
        assert "error" in campaign.results[0]
        assert campaign.results[1]["delay"] > 0
        assert campaign.stats.errors == 1
        # The failing point is not cached; a re-run retries it.
        again = sweep("ablate-slot-split", axes, on_error="store", cache_dir=tmp_path)
        assert again.stats.cached == 1
        assert again.stats.errors == 1

    def test_bad_on_error_value(self):
        with pytest.raises(ValueError):
            run_campaign([], on_error="explode")


class TestKernelCounters:
    """Campaign-level fast/fallback bookkeeping (see repro.analysis.kernels)."""

    #: Non-dyadic deadlines (D = 0.7 T) defeat the integer rescale while the
    #: hyperperiod-limited periods keep the float fallback cheap.
    FALLBACK_AXES = {
        "u_total": [0.6, 1.2],
        "n": [4],
        "rep": [0, 1],
        "deadline_factor": [0.7],
    }

    def test_sched_grid_runs_on_fast_kernels(self):
        from repro.analysis import kernels
        from repro.runner.aggregate import Aggregator
        from repro.runner.grid import grid_specs
        from repro.runner.stream import stream_campaign

        with kernels.kernels_forced(True):
            streamed = stream_campaign(
                grid_specs("schedulability", SCHED_AXES),
                Aggregator([]),
                on_error="store",
            )
        s = streamed.stats
        total = s.kernel_fast + s.kernel_fallback
        assert s.kernel_fast > 0
        assert s.kernel_fast >= 0.9 * total

    def test_fallback_points_are_counted_with_identical_results(self):
        from repro.analysis import kernels
        from repro.runner.aggregate import Aggregator
        from repro.runner.grid import grid_specs
        from repro.runner.stream import stream_campaign

        specs = grid_specs("schedulability", self.FALLBACK_AXES)
        with kernels.kernels_forced(True):
            fast = stream_campaign(
                specs, Aggregator([]), collect=True, on_error="store"
            )
        with kernels.kernels_forced(False):
            slow = stream_campaign(
                specs, Aggregator([]), collect=True, on_error="store"
            )
        assert fast.stats.kernel_fallback > 0
        assert slow.stats.kernel_fast == 0
        # the exactness gate: byte-identical campaign output either way
        assert fast.to_json() == slow.to_json()

    def test_pool_workers_ship_counter_deltas(self):
        from repro.analysis import kernels
        from repro.runner.aggregate import Aggregator
        from repro.runner.grid import grid_specs
        from repro.runner.stream import stream_campaign

        with kernels.kernels_forced(True):
            streamed = stream_campaign(
                grid_specs("schedulability", SCHED_AXES),
                Aggregator([]),
                workers=2,
                batch_size=1,
                on_error="store",
            )
        assert streamed.stats.kernel_fast > 0
