"""Preset-registry tests: capability flags, construction parity, messages.

The registry replaces the CLI's parallel preset-name tuples; these tests
pin that every registered preset's declared capabilities are what its
factories actually deliver, and that the validation messages the CLI
surfaces verbatim come from the registry (one source of truth — the
drift the tuples allowed is now structurally impossible).
"""

import pytest

from repro.runner import GridSource
from repro.runner.presets import (
    DEFAULT_CI_WIDTH,
    PresetError,
    PresetSpec,
    adaptive_message,
    adaptive_preset_names,
    axis_override_message,
    axis_preset_names,
    get_preset,
    preset_names,
    register_preset,
    scenario_message,
    scenario_preset_names,
)

ALL_PRESETS = (
    "table2", "figure4", "ablations", "sched", "faults", "weighted",
    "faultspace", "online",
)


class TestRegistry:
    def test_all_presets_registered_in_order(self):
        assert preset_names() == ALL_PRESETS

    def test_capability_subsets(self):
        assert axis_preset_names() == (
            "sched", "faults", "weighted", "faultspace", "online"
        )
        assert adaptive_preset_names() == ("weighted", "faultspace")
        assert scenario_preset_names() == ("faultspace", "online")

    def test_unknown_preset_is_an_error(self):
        with pytest.raises(PresetError, match="unknown preset 'nope'"):
            get_preset("nope")

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):
            register_preset(get_preset("sched"))

    def test_store_errors_implies_on_error_store(self):
        for name in ALL_PRESETS:
            preset = get_preset(name)
            expected = (
                "store"
                if name in ("weighted", "faultspace", "online")
                else "raise"
            )
            assert preset.store_errors == (expected == "store")
            assert preset.on_error == expected

    def test_row_rendered_presets(self):
        rows = tuple(n for n in ALL_PRESETS if get_preset(n).row_rendered)
        assert rows == ("ablations", "sched", "faults")
        # sched is the only preset rendered BOTH ways
        assert get_preset("sched").render_fn is not None
        assert get_preset("faults").render_fn is None
        assert get_preset("ablations").render_fn is None


class TestMessages:
    """The exact texts the CLI raises come from the registry."""

    def test_axis_message_lists_axis_presets(self):
        assert axis_override_message() == (
            "--axis only applies to the sched/faults/weighted/faultspace/"
            "online presets"
        )

    def test_scenario_message(self):
        assert scenario_message() == (
            "--scenario only applies to the faultspace/online presets"
        )

    def test_adaptive_message(self):
        assert adaptive_message() == (
            "--strategy adaptive supports the weighted/faultspace presets"
        )


class TestConstruction:
    def test_every_preset_builds_specs_and_aggregator(self):
        for name in ALL_PRESETS:
            preset = get_preset(name)
            specs = preset.specs()
            assert specs, name
            agg = preset.aggregator()
            assert agg.config_digest
            # fresh instances, not shared state
            assert agg is not preset.aggregator()

    def test_axis_override_on_non_axis_preset_refused(self):
        with pytest.raises(PresetError, match="--axis only applies"):
            get_preset("table2").specs({"u_total": [1.0]})

    def test_scenario_on_non_scenario_preset_refused(self):
        with pytest.raises(PresetError, match="--scenario only applies"):
            get_preset("weighted").specs(None, "bursty")

    def test_adaptive_on_grid_only_preset_refused(self):
        with pytest.raises(PresetError, match="--strategy adaptive supports"):
            get_preset("sched").adaptive_source()

    def test_axes_accept_cli_strings_and_mappings(self):
        preset = get_preset("sched")
        from_strings = preset.specs(["u_total=0.5,1.0", "rep=0"])
        from_mapping = preset.specs({"u_total": [0.5, 1.0], "rep": [0]})
        assert [s.digest for s in from_strings] == [
            s.digest for s in from_mapping
        ]

    def test_source_strategy_dispatch(self):
        preset = get_preset("weighted")
        grid = preset.source("grid")
        assert isinstance(grid, GridSource)
        adaptive = preset.source(
            "adaptive", ci_width=0.2, max_points=8
        )
        assert adaptive.needs_feedback
        with pytest.raises(PresetError, match="unknown point-source strategy"):
            preset.source("random")

    def test_adaptive_default_ci_width(self):
        preset = get_preset("weighted")
        default = preset.adaptive_source()
        explicit = preset.adaptive_source(ci_width=DEFAULT_CI_WIDTH)
        assert default.config_digest == explicit.config_digest

    def test_scenario_narrows_faultspace_grid(self):
        preset = get_preset("faultspace")
        full = preset.specs()
        narrowed = preset.specs(None, "bursty")
        assert len(narrowed) < len(full)
        assert all(
            s.params["scenario"] == "bursty" for s in narrowed
        )


class TestRendering:
    def test_render_none_for_rows_only_presets(self):
        for name in ("faults", "ablations"):
            preset = get_preset(name)
            assert preset.render(preset.aggregator()) is None

    def test_aggregate_renderers_produce_text(self):
        # sched renders fine even empty (returns ""); weighted/faultspace
        # renderers need folded state, covered by CLI/query tests.
        preset = get_preset("sched")
        assert preset.render(preset.aggregator()) == ""


class TestPresetSpecRecord:
    def test_flags_default_off(self):
        spec = PresetSpec(
            name="__x",
            description="",
            specs_fn=lambda axes, scenario: [],
            aggregator_fn=lambda: None,
        )
        assert not spec.axis_overridable
        assert not spec.adaptive
        assert not spec.store_errors
        assert not spec.scenario_axis
        assert not spec.row_rendered
        assert spec.on_error == "raise"
        assert spec.curve_axes == {}
