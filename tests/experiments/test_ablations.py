"""Ablation study tests."""

import pytest

from repro.experiments.ablations import (
    edf_vs_rm_regions,
    exact_vs_linear_gap,
    overhead_sensitivity,
    partitioning_comparison,
    slot_splitting_gain,
)


class TestExactVsLinear:
    def test_linear_always_upper_bounds_exact(self):
        rows = exact_vs_linear_gap(periods=(1.0, 2.0))
        assert rows
        for r in rows:
            assert r.minq_linear >= r.minq_exact - 1e-6
            assert r.gap >= -1e-6

    def test_gap_ratio_nonnegative(self):
        for r in exact_vs_linear_gap(periods=(1.0,)):
            assert r.gap_ratio >= -1e-9


class TestEdfVsRm:
    def test_edf_dominates(self):
        edf, rm = edf_vs_rm_regions()
        assert edf.algorithm == "EDF" and rm.algorithm == "RM"
        assert edf.max_period_zero_overhead > rm.max_period_zero_overhead
        assert edf.max_admissible_overhead > rm.max_admissible_overhead


class TestPartitioning:
    def test_manual_and_heuristics_all_feasible(self):
        rows = partitioning_comparison(heuristics=("worst-fit",))
        assert len(rows) == 2
        for r in rows:
            assert r.max_period_zero_overhead > 0

    def test_worst_fit_close_to_manual(self):
        rows = partitioning_comparison(heuristics=("worst-fit",))
        manual, wf = rows
        # WFD balances utilization at least as well as the paper's manual
        # split for NF (max bin util <= 0.25 is impossible to beat: tau5).
        assert wf.max_bin_utilization["NF"] <= manual.max_bin_utilization["NF"] + 1e-9


class TestOverheadSensitivity:
    def test_monotone_decreasing_until_infeasible(self):
        pts = overhead_sensitivity(otots=(0.0, 0.05, 0.1, 0.3))
        feasible = [p for p in pts if p.max_period is not None]
        periods = [p.max_period for p in feasible]
        assert periods == sorted(periods, reverse=True)
        assert pts[-1].max_period is None  # 0.3 > max admissible 0.201


class TestSlotSplitting:
    def test_delay_shrinks_with_pieces(self):
        rows = slot_splitting_gain(period=3.0, budget=1.0)
        delays = [r.delay for r in rows]
        assert delays == sorted(delays, reverse=True)
        assert delays[0] == pytest.approx(2.0)
        assert delays[-1] == pytest.approx(0.5)

    def test_supply_never_degrades(self):
        rows = slot_splitting_gain(period=3.0, budget=1.0, pieces_list=(1, 3))
        assert rows[1].supply_at_half_period >= rows[0].supply_at_half_period


class TestAblationSummary:
    def test_streams_all_studies_into_one_aggregate(self, tmp_path):
        from repro.experiments.ablations import ablation_summary

        agg = ablation_summary(
            workers=1, state_path=tmp_path / "agg.json"
        )
        assert agg["minq_gap_ratio"].count > 0
        assert agg["minq_gap_ratio"].mean >= 0
        regions = agg["regions"]
        assert (
            regions["EDF"]["max_period_zero_overhead"]
            > regions["RM"]["max_period_zero_overhead"]
        )
        curve = dict(agg["overhead_curve"].items())
        assert curve[0.0].mean == pytest.approx(
            regions["EDF"]["max_period_zero_overhead"]
        )
        # the snapshot makes a re-run skip every point
        assert (tmp_path / "agg.json").exists()
