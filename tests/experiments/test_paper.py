"""Table 1 reproduction tests: the task set and manual partition."""

import pytest

from repro.experiments import PAPER_OTOT, paper_partition, paper_reference, paper_taskset
from repro.model import Mode


class TestTable1:
    def test_thirteen_tasks(self, paper_ts):
        assert len(paper_ts) == 13

    def test_mode_counts(self, paper_ts):
        assert len(paper_ts.by_mode(Mode.NF)) == 5
        assert len(paper_ts.by_mode(Mode.FS)) == 4
        assert len(paper_ts.by_mode(Mode.FT)) == 4

    def test_exact_parameters(self, paper_ts):
        assert paper_ts["tau1"].wcet == 1 and paper_ts["tau1"].period == 6
        assert paper_ts["tau5"].wcet == 6 and paper_ts["tau5"].period == 24
        assert paper_ts["tau9"].wcet == 1 and paper_ts["tau9"].period == 4
        assert paper_ts["tau13"].wcet == 2 and paper_ts["tau13"].period == 30

    def test_implicit_deadlines(self, paper_ts):
        assert paper_ts.all_implicit_deadline

    def test_mode_utilizations(self, paper_ts):
        assert paper_ts.by_mode(Mode.FT).utilization == pytest.approx(0.2667, abs=1e-4)
        assert paper_ts.by_mode(Mode.FS).utilization == pytest.approx(0.5167, abs=1e-4)
        assert paper_ts.by_mode(Mode.NF).utilization == pytest.approx(0.8250, abs=1e-4)


class TestManualPartition:
    def test_nf_partition(self, paper_part):
        assert paper_part.bin(Mode.NF, 0).names == ("tau1",)
        assert paper_part.bin(Mode.NF, 1).names == ("tau2", "tau3")
        assert paper_part.bin(Mode.NF, 2).names == ("tau4",)
        assert paper_part.bin(Mode.NF, 3).names == ("tau5",)

    def test_fs_partition(self, paper_part):
        assert paper_part.bin(Mode.FS, 0).names == ("tau6", "tau7", "tau8")
        assert paper_part.bin(Mode.FS, 1).names == ("tau9",)

    def test_ft_partition(self, paper_part):
        assert set(paper_part.bin(Mode.FT, 0).names) == {
            "tau10", "tau11", "tau12", "tau13",
        }

    def test_required_utilizations_table2a(self, paper_part, ):
        ref = paper_reference()
        assert paper_part.max_bin_utilization(Mode.FT) == pytest.approx(
            ref.req_util_ft, abs=5e-4
        )
        assert paper_part.max_bin_utilization(Mode.FS) == pytest.approx(
            ref.req_util_fs, abs=5e-4
        )
        assert paper_part.max_bin_utilization(Mode.NF) == pytest.approx(
            ref.req_util_nf, abs=5e-4
        )

    def test_paper_sanity_check_nf_bandwidth(self, paper_part, paper_config_b):
        # The in-text verification: Q̃_NF / P = 0.275 >= 0.250.
        alpha_nf = paper_config_b.allocated_utilization(Mode.NF)
        assert alpha_nf == pytest.approx(0.275, abs=1e-3)
        assert alpha_nf >= paper_part.max_bin_utilization(Mode.NF)

    def test_otot_constant(self):
        assert PAPER_OTOT == 0.05

    def test_fresh_objects_every_call(self):
        assert paper_taskset() is not paper_taskset()
        assert paper_partition() == paper_partition()
