"""Weighted-schedulability preset tests (specs, aggregation, rendering)."""

import json

import pytest

from repro.experiments.weighted import (
    WEIGHTED_FAULT_AXES,
    WEIGHTED_SCHED_AXES,
    compute_weighted,
    weighted_aggregator,
    weighted_curve_rows,
    weighted_specs,
)
from repro.runner import PointSpec
from repro.viz import format_curve_pivot

TINY_SCHED = {
    "u_total": [0.6, 1.8],
    "n": [6],
    "period_hyperperiod": [720.0],
    "rep": [0, 1],
}
TINY_FAULT = {"rate": [0.05], "u_total": [0.8], "rep": [0]}


class TestSpecs:
    def test_default_grid_shape(self):
        specs = weighted_specs()
        sched = [s for s in specs if s.experiment == "schedulability"]
        fault = [s for s in specs if s.experiment == "fault-injection"]
        assert len(sched) == (
            len(WEIGHTED_SCHED_AXES["u_total"])
            * len(WEIGHTED_SCHED_AXES["n"])
            * len(WEIGHTED_SCHED_AXES["period_hyperperiod"])
            * len(WEIGHTED_SCHED_AXES["rep"])
        )
        assert len(fault) == (
            len(WEIGHTED_FAULT_AXES["rate"])
            * len(WEIGHTED_FAULT_AXES["u_total"])
            * len(WEIGHTED_FAULT_AXES["rep"])
        )
        assert all(s.params["source"] == "generated" for s in fault)

    def test_axis_overrides(self):
        specs = weighted_specs(TINY_SCHED, TINY_FAULT)
        assert len(specs) == 4 + 1


class TestAggregation:
    def test_weighted_mean_is_utilization_weighted(self):
        agg = weighted_aggregator()
        mk = lambda u, feas, util: (  # noqa: E731
            PointSpec(
                "schedulability",
                {"u_total": u, "n": 6, "period_hyperperiod": 720.0, "rep": util},
            ),
            {
                "utilization": util,
                "feasible": feas,
                "partitioned": True,
                "period": 1.0,
                "slack_ratio": 0.5,
            },
        )
        agg.fold(*mk(1.0, True, 0.75))
        agg.fold(*mk(1.0, False, 0.25))
        curve = agg["weighted_feasible"]
        acc = curve.bin([1.0, 6, 720.0])
        assert acc.mean == pytest.approx(0.75)
        # the unweighted ratio disagrees, proving the weights matter
        assert agg["feasible_ratio"].mean == pytest.approx(0.5)

    def test_compute_weighted_end_to_end(self, tmp_path):
        agg = compute_weighted(
            TINY_SCHED, TINY_FAULT, workers=1, master_seed=3,
            cache_dir=tmp_path / "cache", state_path=tmp_path / "agg.json",
        )
        summary = agg.summary()
        assert summary["feasible_ratio"]["count"] == 4
        assert summary["fault_coverage"]
        snap = json.loads((tmp_path / "agg.json").read_text())
        assert len(snap["folded"]) == 5

    def test_errors_are_excluded_not_fatal(self):
        # an impossible generated fault point: u_total far beyond feasibility
        agg = compute_weighted(
            {"u_total": [0.6], "n": [6], "period_hyperperiod": [720.0], "rep": [0]},
            {"rate": [0.05], "u_total": [9.0], "rep": [0]},
            workers=1,
            master_seed=3,
        )
        assert agg["fault_coverage"].points == {}
        assert agg["feasible_ratio"].count == 1


class TestRendering:
    def test_curve_rows_and_pivot(self):
        agg = compute_weighted(TINY_SCHED, TINY_FAULT, workers=1, master_seed=3)
        headers, rows = weighted_curve_rows(
            agg, "weighted_feasible", ["u_total", "n", "H"]
        )
        assert headers[:3] == ["u_total", "n", "H"]
        assert len(rows) == 2  # two u_total bins
        assert rows[0][0] < rows[1][0]  # numerically sorted
        table = format_curve_pivot(headers, rows, x="u_total")
        assert "u_total" in table.splitlines()[0]
        assert "n=6" in table.splitlines()[0]
