"""Table 2 reproduction tests: all rows at the paper's precision."""

import pytest

from repro.experiments import compute_table2, paper_reference


@pytest.fixture(scope="module")
def table2():
    return compute_table2()


class TestTable2:
    def test_row_a_required_utilizations(self, table2):
        ref = paper_reference()
        assert table2.req_util_ft == pytest.approx(ref.req_util_ft, abs=5e-4)
        assert table2.req_util_fs == pytest.approx(ref.req_util_fs, abs=5e-4)
        assert table2.req_util_nf == pytest.approx(ref.req_util_nf, abs=5e-4)

    def test_row_b_lengths(self, table2):
        ref = paper_reference()
        b = table2.row_b
        assert b.period == pytest.approx(ref.b_period, abs=1.5e-3)
        assert b.q_ft == pytest.approx(ref.b_q_ft, abs=1.5e-3)
        assert b.q_fs == pytest.approx(ref.b_q_fs, abs=1.5e-3)
        assert b.q_nf == pytest.approx(ref.b_q_nf, abs=1.5e-3)
        assert b.slack == pytest.approx(0.0, abs=1e-4)

    def test_row_b_allocated_utilizations(self, table2):
        ref = paper_reference()
        b = table2.row_b
        assert b.alloc_ft == pytest.approx(ref.b_alloc_ft, abs=2e-3)
        assert b.alloc_fs == pytest.approx(ref.b_alloc_fs, abs=2e-3)
        assert b.alloc_nf == pytest.approx(ref.b_alloc_nf, abs=2e-3)
        assert b.overhead_bandwidth == pytest.approx(
            ref.b_overhead_bandwidth, abs=1e-3
        )

    def test_row_c_lengths(self, table2):
        ref = paper_reference()
        c = table2.row_c
        assert c.period == pytest.approx(ref.c_period, abs=2e-3)
        assert c.q_ft == pytest.approx(ref.c_q_ft, abs=2e-3)
        assert c.q_fs == pytest.approx(ref.c_q_fs, abs=2e-3)
        assert c.q_nf == pytest.approx(ref.c_q_nf, abs=2e-3)
        assert c.slack == pytest.approx(ref.c_slack, abs=2e-3)

    def test_row_c_allocated_utilizations(self, table2):
        ref = paper_reference()
        c = table2.row_c
        assert c.alloc_ft == pytest.approx(ref.c_alloc_ft, abs=2e-3)
        assert c.alloc_fs == pytest.approx(ref.c_alloc_fs, abs=2e-3)
        assert c.alloc_nf == pytest.approx(ref.c_alloc_nf, abs=2e-3)
        assert c.slack_ratio == pytest.approx(ref.c_slack_ratio, abs=2e-3)
        assert c.overhead_bandwidth == pytest.approx(
            ref.c_overhead_bandwidth, abs=1.5e-3
        )

    def test_render_shows_all_rows(self, table2):
        text = table2.render()
        assert "(a) req. util." in text
        assert "(b) length" in text
        assert "(c) alloc." in text

    def test_rm_variant_produces_smaller_period(self):
        rm_table = compute_table2(algorithm="RM")
        edf_table = compute_table2(algorithm="EDF")
        assert rm_table.row_b.period < edf_table.row_b.period
