"""Golden-number regression tests for the reproduced paper artifacts.

The Table 2 and Figure 4 campaigns are fully deterministic, so their
canonical spec/result JSON has a stable SHA-256 digest. Pinning the digest
(plus the key numbers, so a failure is debuggable) guards the whole
pipeline — generators, analysis, region sweeps, the campaign engine and
the aggregation layer — against silent numeric drift during refactors.

If a digest changes *intentionally* (e.g. a more accurate analysis),
update it here together with the numeric assertions and note the change
in CHANGES.md.
"""

import hashlib

import pytest

from repro.experiments import (
    compute_figure4_points,
    compute_table2,
    figure4_specs,
    table2_specs,
)
from repro.runner import run_campaign, stream_campaign


def digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


TABLE2_DIGEST = "73cf70c51053f8b29e61740fb4c435183e3efd37d5f30a0703fbd64d919bf67a"
FIGURE4_DIGEST = "dbc33d8f7f6b782383ba9b62064c6b8cd08f4228bbd08ab2aaa153b616283f2b"


class TestGoldenDigests:
    def test_table2_campaign_digest(self):
        text = run_campaign(table2_specs(), workers=1, master_seed=0).to_json()
        assert digest(text) == TABLE2_DIGEST

    def test_figure4_campaign_digest(self):
        text = run_campaign(figure4_specs(), workers=1, master_seed=0).to_json()
        assert digest(text) == FIGURE4_DIGEST

    def test_streamed_campaign_matches_digest(self):
        """The streaming path must produce the very same canonical bytes."""
        from repro.experiments import table2_aggregator

        streamed = stream_campaign(
            table2_specs(), table2_aggregator(), workers=1, master_seed=0,
            collect=True,
        )
        assert digest(streamed.to_json()) == TABLE2_DIGEST

    def test_batched_campaign_matches_digest(self):
        """Batched execution (batch size not dividing the point count)
        produces the very same canonical bytes as the per-point engine."""
        text = run_campaign(
            figure4_specs(), workers=1, master_seed=0, batch_size=2
        ).to_json()
        assert digest(text) == FIGURE4_DIGEST


class TestGoldenNumbers:
    """Exact values behind the digests — the first place to look on drift."""

    def test_table2_rows(self):
        t2 = compute_table2()
        assert t2.req_util_ft == pytest.approx(0.26666666666666666, abs=1e-12)
        assert t2.row_b.period == pytest.approx(2.966359535833205, abs=1e-9)
        assert t2.row_c.period == pytest.approx(0.8553805745498005, abs=1e-9)

    def test_figure4_points(self):
        f4 = compute_figure4_points()
        assert f4.point1_max_period_edf == pytest.approx(3.176658718325561, abs=1e-9)
        assert f4.point2_max_period_rm == pytest.approx(2.381307450332394, abs=1e-9)
        assert f4.point3_max_overhead_edf == pytest.approx(0.20069852698559787, abs=1e-9)
        assert f4.point4_max_overhead_rm == pytest.approx(0.12855240424952674, abs=1e-9)
        assert f4.point5_max_period_edf_otot == pytest.approx(2.9663595360715638, abs=1e-9)
