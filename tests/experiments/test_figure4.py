"""Figure 4 reproduction tests: curve shape and the five annotated points."""

import numpy as np
import pytest

from repro.experiments import compute_figure4_points, figure4_series, paper_reference


@pytest.fixture(scope="module")
def points():
    return compute_figure4_points()


@pytest.fixture(scope="module")
def series():
    return figure4_series(p_max=3.5, n=701)


class TestFigure4Points:
    def test_point1(self, points):
        assert points.point1_max_period_edf == pytest.approx(
            paper_reference().max_period_edf_zero_overhead, abs=1.5e-3
        )

    def test_point2(self, points):
        assert points.point2_max_period_rm == pytest.approx(
            paper_reference().max_period_rm_zero_overhead, abs=1.5e-3
        )

    def test_point3(self, points):
        assert points.point3_max_overhead_edf == pytest.approx(
            paper_reference().max_overhead_edf, abs=1.5e-3
        )

    def test_point4(self, points):
        assert points.point4_max_overhead_rm == pytest.approx(
            paper_reference().max_overhead_rm, abs=1.5e-3
        )

    def test_point5(self, points):
        assert points.point5_max_period_edf_otot == pytest.approx(
            paper_reference().max_period_edf_otot, abs=1.5e-3
        )


class TestFigure4Curve:
    def test_series_keys(self, series):
        assert set(series) == {"P", "EDF", "RM"}

    def test_edf_dominates_rm(self, series):
        assert np.all(series["EDF"] >= series["RM"] - 1e-9)

    def test_curves_start_near_zero(self, series):
        # G(P) -> 0 as P -> 0 (tiny cycles, proportional quanta).
        assert abs(series["EDF"][0]) < 0.05

    def test_curves_end_negative(self, series):
        assert series["EDF"][-1] < 0.0
        assert series["RM"][-1] < 0.0

    def test_zero_crossing_near_point1(self, series, points):
        ps, g = series["P"], series["EDF"]
        sign_changes = ps[:-1][(g[:-1] >= 0) & (g[1:] < 0)]
        assert sign_changes.size
        assert sign_changes.max() == pytest.approx(
            points.point1_max_period_edf, abs=0.01
        )
