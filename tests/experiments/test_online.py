"""Online preset tests: specs, exact aggregation, rendering, shard merges."""

import json

import pytest

from repro.experiments.online import (
    ONLINE_AXES,
    acceptance_rows,
    online_aggregator,
    online_specs,
    reassignment_rows,
    render_online,
)
from repro.runner import (
    PointSpec,
    ShardManifest,
    canonical_json,
    merge_snapshots,
    shard_specs,
    stream_campaign,
)

#: Small but real grid: both scenarios, two arrival rates, tiny task sets.
TINY_AXES = {
    "arrival_rate": [1.0, 2.0],
    "u_total": [0.5],
    "scenario": ["poisson", "permanent"],
    "rep": [0, 1],
    "n": [4],
    "cycles": [10],
}


@pytest.fixture(scope="module")
def tiny_run():
    return stream_campaign(
        online_specs(TINY_AXES),
        online_aggregator(),
        workers=1,
        master_seed=5,
        on_error="store",
    )


class TestSpecs:
    def test_default_grid_shape(self):
        specs = online_specs()
        assert len(specs) == (
            len(ONLINE_AXES["arrival_rate"])
            * len(ONLINE_AXES["u_total"])
            * len(ONLINE_AXES["scenario"])
            * len(ONLINE_AXES["rep"])
        )
        assert all(s.experiment == "online" for s in specs)
        assert all(s.params["source"] == "generated" for s in specs)
        # the fault rate is fixed; the arrival process has its own axis
        assert all(s.params["rate"] == 0.05 for s in specs)

    def test_scenario_narrowing(self):
        specs = online_specs(TINY_AXES, scenario="permanent")
        assert specs and {s.params["scenario"] for s in specs} == {"permanent"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown fault scenario"):
            online_specs(scenario="cosmic")

    def test_axes_may_override_base_params(self):
        specs = online_specs({"n": [4], "cycles": [5]})
        assert all(s.params["n"] == 4 and s.params["cycles"] == 5 for s in specs)


class TestAggregation:
    def test_synthetic_fold_keeps_exact_acceptance_counts(self):
        """Acceptance bins fold through the multiplicity form — ``accepted``
        successes out of ``offered`` trials — so the bin mean is the exact
        ratio and pooling over shards is exact integer arithmetic."""
        agg = online_aggregator()
        spec = PointSpec(
            "online",
            {"scenario": "permanent", "arrival_rate": 1.0, "rep": 0},
        )
        agg.fold(
            spec,
            {
                "acceptance_bins": [[0, 4, 3], [2, 2, 2]],
                "offered": 6,
                "admitted": 5,
                "orphaned": 2,
                "reassigned": 1,
                "reassign_latencies": [1.25],
                "lost": 1,
                "miss_windows": [1.25, 40.0],
                "post_failure_misses": 4,
                "slack_final": 0.25,
            },
        )
        bin0 = agg["acceptance"].bin(["permanent", 1.0, 0])
        assert (bin0.count, int(bin0.total)) == (4, 3)
        assert agg["acceptance"].bin(["permanent", 1.0, 2]).mean == 1.0
        assert agg["reassign_latency"].bin(["permanent", 1.0]).mean == 1.25
        assert agg["miss_window"].bin(["permanent", 1.0]).count == 2
        assert agg["orphaned"].bin(["permanent", 1.0]).mean == 2.0
        assert agg["post_failure_misses"].mean == pytest.approx(4.0)

    def test_empty_cycles_never_fold(self):
        agg = online_aggregator()
        spec = PointSpec("online", {"scenario": "poisson", "arrival_rate": 0.5})
        agg.fold(
            spec,
            {
                "acceptance_bins": [[0, 0, 0], [1, 2, 1]],
                "offered": 2,
                "admitted": 1,
                "orphaned": 0,
                "reassigned": 0,
                "reassign_latencies": [],
                "lost": 0,
                "miss_windows": [],
                "post_failure_misses": 0,
                "slack_final": 0.1,
            },
        )
        keys = {tuple(k) for k, _ in agg["acceptance"].items()}
        assert keys == {("poisson", 0.5, 1)}

    def test_foreign_experiment_results_skipped(self):
        agg = online_aggregator()
        agg.fold(
            PointSpec("dependability", {"scenario": "poisson", "rate": 0.1}),
            {"acceptance_bins": [[0, 1, 1]], "offered": 1},
        )
        assert not list(agg["acceptance"].items())
        assert agg["offered"].count == 0

    def test_end_to_end_covers_every_series(self, tiny_run):
        keys = {
            tuple(key[:2])
            for key, _ in tiny_run.aggregator["acceptance"].items()
        }
        assert keys == {
            (scenario, rate)
            for scenario in ("poisson", "permanent")
            for rate in (1.0, 2.0)
        }

    def test_permanent_deaths_trigger_reassignment(self, tiny_run):
        """The tentpole signal: permanent scenarios kill a core, orphaning
        tasks; poisson (transient-only) campaigns never do."""
        orphan_by_scenario = {}
        for key, acc in tiny_run.aggregator["orphaned"].items():
            orphan_by_scenario.setdefault(key[0], 0)
            orphan_by_scenario[key[0]] += int(acc.total)
        assert orphan_by_scenario["poisson"] == 0
        assert orphan_by_scenario["permanent"] > 0
        latencies = list(tiny_run.aggregator["reassign_latency"].items())
        assert latencies and all(key[0] == "permanent" for key, _ in latencies)


class TestRendering:
    def test_tables_and_plot(self, tiny_run):
        text = render_online(tiny_run.aggregator)
        assert "online acceptance (pooled over cycles, Wilson 95% CIs):" in text
        assert "acceptance ratio vs major cycle:" in text
        assert "re-assignment after permanent core failure:" in text
        for scenario in ("poisson", "permanent"):
            assert scenario in text
        assert "summary: campaigns=8" in text

    def test_acceptance_rows_pool_cycles(self, tiny_run):
        headers, rows = acceptance_rows(tiny_run.aggregator)
        assert headers[:2] == ["scenario", "arrival_rate"]
        assert len(rows) == 4  # 2 scenarios x 2 rates
        off, acc = headers.index("offered"), headers.index("accepted")
        assert all(0 < r[acc] <= r[off] for r in rows)
        ci = rows[0][headers.index("ci95")]
        assert ci == "n/a" or ci.startswith("[")

    def test_reassignment_rows_quiet_for_transients(self, tiny_run):
        headers, rows = reassignment_rows(tiny_run.aggregator)
        orphans = headers.index("orphans/pt")
        latency = headers.index("mean_latency")
        by_scenario = {r[0]: r for r in rows if r[0] == "poisson"}
        assert by_scenario["poisson"][orphans] == 0.0
        assert by_scenario["poisson"][latency] is None
        assert any(r[0] == "permanent" and r[orphans] > 0 for r in rows)

    def test_empty_aggregator_renders(self):
        text = render_online(online_aggregator())
        assert "summary: campaigns=0" in text

    def test_rendering_never_mutates_the_aggregate(self, tiny_run):
        before = canonical_json(tiny_run.aggregator.state_dict())
        render_online(tiny_run.aggregator)
        acceptance_rows(tiny_run.aggregator)
        reassignment_rows(tiny_run.aggregator)
        assert canonical_json(tiny_run.aggregator.state_dict()) == before


class TestQueryLayer:
    def test_curves_served_with_registered_axes(self, tiny_run):
        from repro.reporting import SnapshotQuery

        query = SnapshotQuery.from_aggregator("online", tiny_run.aggregator)
        names = {m["name"] for m in query.metrics()}
        assert {"acceptance", "reassign_latency", "miss_window"} <= names
        curve = query.curve("acceptance")
        keys = curve["points"][0]["key"]
        assert set(keys) == {"scenario", "arrival_rate", "cycle"}

    def test_acceptance_pivots_over_cycle(self, tiny_run):
        from repro.reporting import SnapshotQuery

        query = SnapshotQuery.from_aggregator("online", tiny_run.aggregator)
        curve = query.curve("acceptance", axis="cycle")
        assert curve["axis"] == "cycle"
        assert len(curve["series"]) == 4
        for series in curve["series"]:
            assert set(series["key"]) == {"scenario", "arrival_rate"}


class TestShardMerge:
    def test_two_shards_merge_to_the_unsharded_aggregate(
        self, tmp_path, tiny_run
    ):
        specs = online_specs(TINY_AXES)
        shard_snaps = []
        for i in range(2):
            manifest = ShardManifest.for_shard(specs, i, 2)
            result = stream_campaign(
                shard_specs(specs, i, 2),
                online_aggregator(),
                workers=1,
                master_seed=5,
                on_error="store",
                shard=manifest,
                state_path=tmp_path / f"shard-{i}.json",
            )
            assert result.stats.errors == 0
            shard_snaps.append(
                json.loads((tmp_path / f"shard-{i}.json").read_text())
            )
        merged = merge_snapshots(shard_snaps)
        assert canonical_json(merged["aggregate"]) == canonical_json(
            tiny_run.aggregator.state_dict()
        )
        assert sorted(merged["folded"]) == sorted({s.digest for s in specs})

    def test_worker_count_does_not_change_the_aggregate(self, tiny_run):
        parallel = stream_campaign(
            online_specs(TINY_AXES),
            online_aggregator(),
            workers=2,
            master_seed=5,
            on_error="store",
        )
        assert canonical_json(parallel.aggregator.state_dict()) == (
            canonical_json(tiny_run.aggregator.state_dict())
        )
