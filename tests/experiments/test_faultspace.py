"""Faultspace preset tests: specs, aggregation, rendering, shard merges."""

import json

import pytest

from repro.experiments.faultspace import (
    FAULTSPACE_AXES,
    faultspace_aggregator,
    faultspace_specs,
    ft_miss_rows,
    outcome_rate_rows,
    render_faultspace,
)
from repro.runner import (
    PointSpec,
    ShardManifest,
    merge_snapshots,
    shard_specs,
    stream_campaign,
)

#: Small but real grid: 3 scenarios x 2 rates, cheap generated sets.
TINY_AXES = {
    "u_total": [0.8],
    "rate": [0.02, 0.05],
    "scenario": ["poisson", "bursty", "permanent"],
    "rep": [0, 1],
    "n": [6],
    "cycles": [10],
}


@pytest.fixture(scope="module")
def tiny_run():
    return stream_campaign(
        faultspace_specs(TINY_AXES),
        faultspace_aggregator(),
        workers=1,
        master_seed=5,
        on_error="store",
    )


class TestSpecs:
    def test_default_grid_shape(self):
        specs = faultspace_specs()
        assert len(specs) == (
            len(FAULTSPACE_AXES["u_total"])
            * len(FAULTSPACE_AXES["rate"])
            * len(FAULTSPACE_AXES["scenario"])
            * len(FAULTSPACE_AXES["rep"])
        )
        assert all(s.experiment == "dependability" for s in specs)
        assert all(s.params["source"] == "generated" for s in specs)

    def test_scenario_narrowing(self):
        specs = faultspace_specs(TINY_AXES, scenario="permanent")
        assert specs and {s.params["scenario"] for s in specs} == {"permanent"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown fault scenario"):
            faultspace_specs(scenario="cosmic")

    def test_axes_may_override_base_params(self):
        specs = faultspace_specs({"n": [6], "cycles": [5]})
        assert all(s.params["n"] == 6 and s.params["cycles"] == 5 for s in specs)


class TestAggregation:
    def test_synthetic_fold(self):
        agg = faultspace_aggregator()
        spec = PointSpec(
            "dependability",
            {"scenario": "poisson", "rate": 0.05, "u_total": 0.8, "rep": 0},
        )
        agg.fold(
            spec,
            {
                "injected": 4,
                "outcomes": {"masked": 3, "corrupted": 1},
                "outcomes_by_mode": {"FT/masked": 3, "NF/corrupted": 1},
                "ft_miss": False,
                "any_corruption": True,
                "corrupted_jobs": 1,
                "utilization": 0.8,
            },
        )
        outcomes = agg["outcomes"].bin(["poisson", 0.05])
        assert outcomes.total == 4
        assert outcomes.rate("masked") == pytest.approx(0.75)
        assert agg["ft_miss"].bin(["poisson", 0.05]).mean == 0.0
        assert agg["any_corruption"].bin(["poisson", 0.05]).mean == 1.0
        assert agg["injected"].mean == pytest.approx(4.0)

    def test_end_to_end_covers_every_scenario(self, tiny_run):
        curves = tiny_run.aggregator["outcomes"]
        scenarios = {key[0] for key, _ in curves.items()}
        assert scenarios == {"poisson", "bursty", "permanent"}
        # per-mode taxonomy streamed too
        by_mode = tiny_run.aggregator["outcomes_by_mode"]
        assert any(acc.total for _, acc in by_mode.items())


class TestRendering:
    def test_tables_and_plot(self, tiny_run):
        text = render_faultspace(tiny_run.aggregator)
        assert "fault outcome shares" in text
        assert "Wilson 95%" in text
        assert "FT-miss" in text
        for scenario in ("poisson", "bursty", "permanent"):
            assert scenario in text
        assert "corrupted share vs fault rate" in text
        assert "summary: campaigns=12" in text

    def test_outcome_rows_have_ci_columns(self, tiny_run):
        headers, rows = outcome_rate_rows(tiny_run.aggregator)
        assert "masked_ci95" in headers and "corrupted_ci95" in headers
        assert len(rows) == 6  # 3 scenarios x 2 rates
        ci = rows[0][headers.index("masked_ci95")]
        assert ci == "n/a" or ci.startswith("[")

    def test_ft_miss_rows_probabilities_bounded(self, tiny_run):
        headers, rows = ft_miss_rows(tiny_run.aggregator)
        p = headers.index("p_ft_miss")
        assert rows and all(0.0 <= r[p] <= 1.0 for r in rows)

    def test_empty_aggregator_renders(self):
        text = render_faultspace(faultspace_aggregator())
        assert "summary: campaigns=0" in text

    def test_integer_rate_axis_addresses_the_same_bins(self):
        """An int rate axis value must hit the same (scenario, rate) bin in
        every curve — a float-coerced lookup key would miss it — and
        rendering must never create empty bins in the live aggregate."""
        from repro.runner import canonical_json

        agg = faultspace_aggregator()
        spec = PointSpec(
            "dependability", {"scenario": "poisson", "rate": 1, "rep": 0}
        )
        agg.fold(
            spec,
            {
                "injected": 2,
                "outcomes": {"corrupted": 2},
                "outcomes_by_mode": {"NF/corrupted": 2},
                "ft_miss": True,
                "any_corruption": True,
                "corrupted_jobs": 2,
                "utilization": 0.8,
            },
        )
        before = canonical_json(agg.state_dict())
        headers, rows = ft_miss_rows(agg)
        assert rows[0][headers.index("p_corruption")] == 1.0
        render_faultspace(agg)
        assert canonical_json(agg.state_dict()) == before


class TestShardMerge:
    def test_two_shards_merge_to_the_unsharded_aggregate(
        self, tmp_path, tiny_run
    ):
        from repro.runner import canonical_json

        specs = faultspace_specs(TINY_AXES)
        shard_snaps = []
        for i in range(2):
            manifest = ShardManifest.for_shard(specs, i, 2)
            result = stream_campaign(
                shard_specs(specs, i, 2),
                faultspace_aggregator(),
                workers=1,
                master_seed=5,
                on_error="store",
                shard=manifest,
                state_path=tmp_path / f"shard-{i}.json",
            )
            assert result.stats.errors == 0
            shard_snaps.append(
                json.loads((tmp_path / f"shard-{i}.json").read_text())
            )
        merged = merge_snapshots(shard_snaps)
        assert canonical_json(merged["aggregate"]) == canonical_json(
            tiny_run.aggregator.state_dict()
        )
        assert sorted(merged["folded"]) == sorted(
            {s.digest for s in specs}
        )
