"""Unit tests for the mode-switch controller (Figure 2 timeline)."""

import pytest

from repro.core import Overheads, SlotSchedule
from repro.model import Mode
from repro.platform import ModeSwitchController, SegmentKind


@pytest.fixture
def schedule():
    # P=3: FT [0,0.9) with overhead tail [0.8,0.9); FS [0.9,2.1) tail 0.1;
    # NF [2.1,2.7) tail 0.1; idle [2.7,3).
    return SlotSchedule(
        3.0,
        {Mode.FT: 0.9, Mode.FS: 1.2, Mode.NF: 0.6},
        Overheads(0.1, 0.1, 0.1),
    )


@pytest.fixture
def ctrl(schedule):
    return ModeSwitchController(schedule)


class TestSegments:
    def test_one_cycle_structure(self, ctrl):
        segs = [s for s in ctrl.segments(3.0)]
        kinds = [(s.kind, s.mode) for s in segs]
        assert kinds == [
            (SegmentKind.USABLE, Mode.FT),
            (SegmentKind.OVERHEAD, Mode.FT),
            (SegmentKind.USABLE, Mode.FS),
            (SegmentKind.OVERHEAD, Mode.FS),
            (SegmentKind.USABLE, Mode.NF),
            (SegmentKind.OVERHEAD, Mode.NF),
            (SegmentKind.IDLE, None),
        ]

    def test_segments_are_contiguous(self, ctrl):
        segs = list(ctrl.segments(9.0))
        for a, b in zip(segs, segs[1:]):
            assert a.end == pytest.approx(b.start)

    def test_segments_clip_at_horizon(self, ctrl):
        segs = list(ctrl.segments(1.0))
        assert segs[-1].end <= 1.0 + 1e-9

    def test_cycle_counter(self, ctrl):
        segs = list(ctrl.segments(6.5))
        assert {s.cycle for s in segs} == {0, 1, 2}

    def test_durations_match_schedule(self, ctrl, schedule):
        segs = [s for s in ctrl.segments(3.0) if s.kind is SegmentKind.USABLE]
        durations = {s.mode: s.duration for s in segs}
        for mode in Mode:
            assert durations[mode] == pytest.approx(schedule.usable(mode))


class TestUsableWindows:
    def test_windows_repeat_per_cycle(self, ctrl):
        w = ctrl.usable_windows(Mode.FS, 6.0)
        assert len(w) == 2
        assert w[0] == (pytest.approx(0.9), pytest.approx(2.0))
        assert w[1] == (pytest.approx(3.9), pytest.approx(5.0))

    def test_zero_quantum_mode_has_no_windows(self):
        s = SlotSchedule(2.0, {Mode.NF: 1.0}, Overheads.zero())
        c = ModeSwitchController(s)
        assert c.usable_windows(Mode.FT, 10.0) == []


class TestSegmentAt:
    def test_start_of_cycle(self, ctrl):
        seg = ctrl.segment_at(0.0)
        assert seg.mode is Mode.FT and seg.kind is SegmentKind.USABLE

    def test_overhead_instant(self, ctrl):
        seg = ctrl.segment_at(0.85)
        assert seg.kind is SegmentKind.OVERHEAD and seg.mode is Mode.FT

    def test_idle_instant(self, ctrl):
        assert ctrl.segment_at(2.8).kind is SegmentKind.IDLE

    def test_second_cycle(self, ctrl):
        seg = ctrl.segment_at(3.0 + 1.0)
        assert seg.mode is Mode.FS and seg.cycle == 1

    def test_boundary_belongs_to_starting_segment(self, ctrl):
        seg = ctrl.segment_at(0.9)
        assert seg.mode is Mode.FS and seg.kind is SegmentKind.USABLE

    def test_mode_at_helper(self, ctrl):
        assert ctrl.mode_at(0.5) is Mode.FT
        assert ctrl.mode_at(2.8) is None

    def test_negative_time_rejected(self, ctrl):
        with pytest.raises(ValueError):
            ctrl.segment_at(-0.1)

    def test_layout_lookup(self, ctrl):
        assert ctrl.layout_at(Mode.FS).logical_processors == 2
