"""Unit tests for cores, channels and the checker."""

import pytest

from repro.model import Mode
from repro.platform import Checker, Core, FaultEffect, LockstepChannel
from repro.platform.modes import layout_for


class TestCore:
    def test_valid_indices(self):
        for i in (0, 1, 2, 3, 4, 7, 63):
            Core(i)

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            Core(-1)


class TestLockstepChannel:
    def test_single_core_channel(self):
        ch = LockstepChannel((2,))
        assert ch.width == 1
        assert ch.fault_effect() is FaultEffect.CORRUPTED

    def test_dual_lockstep_detects(self):
        ch = LockstepChannel((0, 1))
        assert ch.fault_effect() is FaultEffect.SILENCED

    def test_redundant_lockstep_masks(self):
        ch = LockstepChannel((0, 1, 2, 3), voting=True)
        assert ch.fault_effect() is FaultEffect.MASKED

    def test_voting_needs_three_cores(self):
        with pytest.raises(ValueError, match="voting"):
            LockstepChannel((0, 1), voting=True)

    def test_three_wide_voting_masks(self):
        # The Section 2.4 remark: 3 lock-stepped cores suffice to vote.
        ch = LockstepChannel((0, 1, 2), voting=True)
        assert ch.fault_effect() is FaultEffect.MASKED

    def test_empty_channel_rejected(self):
        with pytest.raises(ValueError):
            LockstepChannel(())

    def test_duplicate_cores(self):
        with pytest.raises(ValueError):
            LockstepChannel((0, 0))

    def test_large_core_indices_allowed(self):
        ch = LockstepChannel((5, 6))
        assert ch.fault_effect() is FaultEffect.SILENCED

    def test_negative_core_index(self):
        with pytest.raises(ValueError):
            LockstepChannel((-1,))

    def test_contains(self):
        ch = LockstepChannel((2, 3))
        assert ch.contains(3)
        assert not ch.contains(0)


class TestChecker:
    def test_configure_and_classify_ft(self):
        ck = Checker()
        ck.configure(Mode.FT, layout_for(Mode.FT).channels)
        for core in range(4):
            idx, effect = ck.classify_fault(core)
            assert idx == 0
            assert effect is FaultEffect.MASKED

    def test_classify_fs_maps_channels(self):
        ck = Checker()
        ck.configure(Mode.FS, layout_for(Mode.FS).channels)
        assert ck.classify_fault(0)[0] == 0
        assert ck.classify_fault(1)[0] == 0
        assert ck.classify_fault(2)[0] == 1
        assert ck.classify_fault(3)[0] == 1
        assert ck.classify_fault(2)[1] is FaultEffect.SILENCED

    def test_classify_nf_one_to_one(self):
        ck = Checker()
        ck.configure(Mode.NF, layout_for(Mode.NF).channels)
        for core in range(4):
            idx, effect = ck.classify_fault(core)
            assert idx == core
            assert effect is FaultEffect.CORRUPTED

    def test_layout_must_cover_all_cores(self):
        ck = Checker()
        # Cores 0..1 alone form a valid (2-core) platform; a gap does not.
        with pytest.raises(ValueError, match="exactly once"):
            ck.configure(
                Mode.FS, (LockstepChannel((0, 1)), LockstepChannel((3,)))
            )

    def test_unconfigured_checker_raises(self):
        with pytest.raises(RuntimeError):
            Checker().channel_of(0)

    def test_mode_property_tracks_configuration(self):
        ck = Checker()
        assert ck.mode is None
        ck.configure(Mode.NF, layout_for(Mode.NF).channels)
        assert ck.mode is Mode.NF
