"""Unit tests for the canonical mode layouts."""

from repro.model import Mode
from repro.platform import layout_for


class TestLayouts:
    def test_ft_single_voting_channel(self):
        layout = layout_for(Mode.FT)
        assert layout.logical_processors == 1
        assert layout.replication == 4
        assert layout.channels[0].voting

    def test_fs_two_dual_channels(self):
        layout = layout_for(Mode.FS)
        assert layout.logical_processors == 2
        assert layout.replication == 2
        assert all(not ch.voting for ch in layout.channels)

    def test_nf_four_independent(self):
        layout = layout_for(Mode.NF)
        assert layout.logical_processors == 4
        assert layout.replication == 1

    def test_each_layout_covers_all_cores_once(self):
        for mode in Mode:
            cores = [c for ch in layout_for(mode).channels for c in ch.cores]
            assert sorted(cores) == [0, 1, 2, 3]

    def test_parallelism_matches_mode_enum(self):
        for mode in Mode:
            assert layout_for(mode).logical_processors == mode.parallelism
