"""Unit tests for the canonical mode layouts."""

from repro.model import Mode
from repro.platform import layout_for


class TestLayouts:
    def test_ft_single_voting_channel(self):
        layout = layout_for(Mode.FT)
        assert layout.logical_processors == 1
        assert layout.replication == 4
        assert layout.channels[0].voting

    def test_fs_two_dual_channels(self):
        layout = layout_for(Mode.FS)
        assert layout.logical_processors == 2
        assert layout.replication == 2
        assert all(not ch.voting for ch in layout.channels)

    def test_nf_four_independent(self):
        layout = layout_for(Mode.NF)
        assert layout.logical_processors == 4
        assert layout.replication == 1

    def test_each_layout_covers_all_cores_once(self):
        for mode in Mode:
            cores = [c for ch in layout_for(mode).channels for c in ch.cores]
            assert sorted(cores) == [0, 1, 2, 3]

    def test_parallelism_matches_mode_enum(self):
        for mode in Mode:
            assert layout_for(mode).logical_processors == mode.parallelism


class TestGeneralizedLayouts:
    """Layouts beyond the paper's 4-core chip (PR: online core refactor)."""

    def test_ft_is_one_all_core_channel(self):
        for n in (2, 3, 6, 8):
            layout = layout_for(Mode.FT, n)
            assert layout.logical_processors == 1
            assert layout.replication == n
            # Voting needs >= 3 members; a 2-core FT degrades to fail-silent.
            assert layout.channels[0].voting == (n >= 3)

    def test_fs_consecutive_couples_with_odd_singleton(self):
        assert [ch.cores for ch in layout_for(Mode.FS, 6).channels] == [
            (0, 1), (2, 3), (4, 5)
        ]
        assert [ch.cores for ch in layout_for(Mode.FS, 5).channels] == [
            (0, 1), (2, 3), (4,)
        ]

    def test_nf_singletons(self):
        layout = layout_for(Mode.NF, 8)
        assert layout.logical_processors == 8
        assert [ch.cores for ch in layout.channels] == [
            (i,) for i in range(8)
        ]

    def test_every_layout_covers_all_cores_once(self):
        for n in (2, 5, 6, 8):
            for mode in Mode:
                cores = [
                    c for ch in layout_for(mode, n).channels for c in ch.cores
                ]
                assert sorted(cores) == list(range(n))

    def test_core_count_validated(self):
        import pytest

        with pytest.raises(ValueError):
            layout_for(Mode.FT, 0)


class TestSurvivingChannels:
    def test_voting_survives_down_to_three_members(self):
        from repro.platform import surviving_channels

        ft = layout_for(Mode.FT, 4)
        assert surviving_channels(ft, set()) == (0,)
        assert surviving_channels(ft, {2}) == (0,)      # 3 live: still votes
        assert surviving_channels(ft, {1, 2}) == ()     # 2 live: no majority

    def test_lockstep_couple_needs_both_members(self):
        from repro.platform import surviving_channels

        fs = layout_for(Mode.FS, 4)
        assert surviving_channels(fs, set()) == (0, 1)
        assert surviving_channels(fs, {3}) == (0,)

    def test_singletons_die_with_their_core(self):
        from repro.platform import surviving_channels

        nf = layout_for(Mode.NF, 4)
        assert surviving_channels(nf, {0, 2}) == (1, 3)
