"""CLI tests (direct main() invocation, no subprocess)."""

import json

import pytest

from repro.cli import main
from repro.experiments import paper_taskset
from repro.model import taskset_to_json


@pytest.fixture
def ts_file(tmp_path):
    path = tmp_path / "paper.json"
    path.write_text(taskset_to_json(paper_taskset()))
    return str(path)


class TestAnalyze:
    def test_analyze_ok(self, ts_file, capsys):
        assert main(["analyze", ts_file]) == 0
        out = capsys.readouterr().out
        assert "13 tasks" in out
        assert "FT[0]" in out

    def test_analyze_rm(self, ts_file, capsys):
        assert main(["analyze", ts_file, "--alg", "RM"]) == 0


class TestDesign:
    def test_design_human_output(self, ts_file, capsys):
        assert main(["design", ts_file, "--otot", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "min-overhead-bandwidth" in out
        assert "2.96" in out  # the paper period

    def test_design_json_output(self, ts_file, capsys):
        assert main(["design", ts_file, "--otot", "0.05", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["period"] == pytest.approx(2.966, abs=2e-3)
        assert set(data["usable"]) == {"FT", "FS", "NF"}

    def test_design_max_slack(self, ts_file, capsys):
        assert main(
            ["design", ts_file, "--otot", "0.05", "--goal", "max-slack"]
        ) == 0
        assert "max-slack" in capsys.readouterr().out

    def test_design_infeasible_overhead(self, ts_file, capsys):
        assert main(["design", ts_file, "--otot", "0.9"]) == 1
        assert "failed" in capsys.readouterr().out


class TestRegion:
    def test_region_plot_and_points(self, ts_file, capsys):
        assert main(["region", ts_file, "--otot", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "P (period)" in out
        assert "max admissible Otot" in out


class TestSimulate:
    def test_simulate_clean(self, ts_file, capsys):
        assert main(
            ["simulate", ts_file, "--otot", "0.05", "--cycles", "30"]
        ) == 0
        assert "0 deadline misses" in capsys.readouterr().out

    def test_simulate_with_faults(self, ts_file, capsys):
        rc = main(
            [
                "simulate", ts_file, "--otot", "0.05", "--cycles", "30",
                "--fault-rate", "0.05", "--seed", "1",
            ]
        )
        assert rc == 0
        assert "faults injected" in capsys.readouterr().out


class TestPaper:
    def test_paper_command(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "3.176" in out and "Table 2" in out


class TestCampaign:
    def test_table2_preset(self, capsys):
        assert main(["campaign", "table2", "--workers", "1", "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "(b) length" in out
        assert "2.966" in out

    def test_figure4_preset(self, capsys):
        assert main(["campaign", "figure4", "--workers", "1", "--no-progress"]) == 0
        assert "3.177" in capsys.readouterr().out

    def test_sched_preset_with_axes_and_out(self, tmp_path, capsys):
        out_file = tmp_path / "points.json"
        args = [
            "campaign", "sched",
            "--axis", "u_total=0.5,2.5",
            "--axis", "n=6",
            "--axis", "rep=0,1",
            "--seed", "9",
            "--no-progress",
            "--out", str(out_file),
        ]
        assert main(args + ["--workers", "1"]) == 0
        text = capsys.readouterr().out
        assert "acceptance ratios" in text
        data = json.loads(out_file.read_text())
        assert len(data) == 4
        assert all("spec" in row and "result" in row for row in data)

    def test_out_identical_across_worker_counts_and_batch_sizes(self, tmp_path):
        outs = []
        for workers, batch in (("1", "1"), ("2", "1"), ("2", "3"), ("2", "64")):
            out_file = tmp_path / f"w{workers}-b{batch}.json"
            assert main([
                "campaign", "sched",
                "--axis", "u_total=0.5,1.5", "--axis", "n=6", "--axis", "rep=0,1",
                "--seed", "3", "--workers", workers, "--batch", batch,
                "--no-progress", "--out", str(out_file),
            ]) == 0
            outs.append(out_file.read_text())
        assert len(set(outs)) == 1

    def test_stats_line_reports_batch_size(self, tmp_path, capsys):
        assert main([
            "campaign", "sched",
            "--axis", "u_total=0.5", "--axis", "n=6", "--axis", "rep=0,1",
            "--workers", "1", "--batch", "2", "--no-progress",
        ]) == 0
        assert "x batch 2" in capsys.readouterr().err

    def test_cached_rerun_computes_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = [
            "campaign", "sched", "--axis", "u_total=0.5", "--axis", "n=6",
            "--axis", "rep=0,1", "--workers", "1", "--no-progress",
            "--cache-dir", cache,
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        # stats line goes to stderr
        assert "0 computed, 2 cached" in capsys.readouterr().err

    def test_json_output(self, capsys):
        assert main([
            "campaign", "faults", "--axis", "rate=0.05", "--axis", "rep=0",
            "--workers", "1", "--no-progress", "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["spec"]["experiment"] == "fault-injection"
        assert data[0]["result"]["ft_misses"] == 0

    def test_axis_rejected_for_paper_presets(self):
        with pytest.raises(SystemExit):
            main(["campaign", "table2", "--axis", "otot=0.1", "--no-progress"])

    def test_preset_flag_form(self, capsys):
        assert main(
            ["campaign", "--preset", "table2", "--workers", "1", "--no-progress"]
        ) == 0
        assert "(b) length" in capsys.readouterr().out

    def test_missing_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--workers", "1", "--no-progress"])

    def test_conflicting_presets_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "table2", "--preset", "figure4", "--no-progress"])


WEIGHTED_TINY = [
    "--axis", "u_total=0.6,1.8", "--axis", "n=6",
    "--axis", "period_hyperperiod=720.0", "--axis", "rep=0,1",
    "--axis", "rate=0.05",
]


class TestWeightedCampaign:
    def test_renders_weighted_curves(self, capsys):
        assert main(
            ["campaign", "weighted", *WEIGHTED_TINY, "--workers", "1",
             "--no-progress"]
        ) == 0
        out = capsys.readouterr().out
        assert "weighted schedulability" in out
        assert "weighted fault coverage" in out
        assert "summary:" in out

    def test_agg_out_identical_across_worker_counts_and_batches(self, tmp_path):
        """The PR's acceptance criterion on the weighted preset: --workers 4
        --batch 64 is byte-identical to --workers 1 --batch 1."""
        outs = []
        for workers, batch in (("1", "1"), ("4", "64")):
            agg_file = tmp_path / f"agg-w{workers}-b{batch}.json"
            assert main(
                ["campaign", "--preset", "weighted", *WEIGHTED_TINY,
                 "--workers", workers, "--batch", batch, "--seed", "3",
                 "--no-progress", "--agg-out", str(agg_file)]
            ) == 0
            outs.append(agg_file.read_bytes())
        assert outs[0] == outs[1]

    def test_warm_cache_resumes_without_refolding(self, tmp_path, capsys):
        args = [
            "campaign", "weighted", *WEIGHTED_TINY, "--workers", "1",
            "--seed", "3", "--no-progress", "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(args + ["--agg-out", str(tmp_path / "a.json")]) == 0
        capsys.readouterr()
        assert main(args + ["--agg-out", str(tmp_path / "b.json")]) == 0
        err = capsys.readouterr().err
        assert "0 computed" in err
        assert "0 folded" in err  # every point resumed from the snapshot
        assert (tmp_path / "a.json").read_bytes() == (
            tmp_path / "b.json"
        ).read_bytes()


FAULTSPACE_TINY = [
    "--axis", "u_total=0.8", "--axis", "rate=0.02,0.05",
    "--axis", "scenario=poisson,bursty,permanent", "--axis", "rep=0,1",
    "--axis", "n=6", "--axis", "cycles=10",
]


class TestFaultspaceCampaign:
    def test_renders_outcome_curves_and_intervals(self, capsys):
        assert main(
            ["campaign", "faultspace", *FAULTSPACE_TINY, "--workers", "1",
             "--seed", "5", "--no-progress"]
        ) == 0
        out = capsys.readouterr().out
        assert "fault outcome shares (Wilson 95% CIs)" in out
        assert "FT-miss / silent-corruption probability" in out
        for scenario in ("poisson", "bursty", "permanent"):
            assert scenario in out
        assert "per-mode outcome taxonomy" in out

    def test_scenario_flag_narrows_the_axis(self, capsys):
        assert main(
            ["campaign", "faultspace", *FAULTSPACE_TINY,
             "--scenario", "permanent", "--workers", "1", "--seed", "5",
             "--no-progress"]
        ) == 0
        out = capsys.readouterr().out
        assert "permanent" in out
        assert "poisson" not in out and "bursty" not in out

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(
                ["campaign", "faultspace", "--scenario", "cosmic",
                 "--no-progress"]
            )

    def test_scenario_rejected_for_other_presets(self):
        with pytest.raises(SystemExit):
            main(
                ["campaign", "sched", "--scenario", "poisson", "--no-progress"]
            )

    def test_agg_out_identical_across_worker_counts_and_batches(self, tmp_path):
        outs = []
        for workers, batch in (("1", "1"), ("2", "64")):
            agg_file = tmp_path / f"agg-w{workers}-b{batch}.json"
            assert main(
                ["campaign", "--preset", "faultspace", *FAULTSPACE_TINY,
                 "--workers", workers, "--batch", batch, "--seed", "5",
                 "--no-progress", "--agg-out", str(agg_file)]
            ) == 0
            outs.append(agg_file.read_bytes())
        assert outs[0] == outs[1]

    def test_shards_merge_to_unsharded_bytes(self, tmp_path, capsys):
        """The PR's acceptance criterion: both faultspace shards merge to
        the snapshot of the unsharded run, byte for byte, with outcome
        curves for three distinct scenarios."""
        base = [
            "campaign", "faultspace", *FAULTSPACE_TINY, "--workers", "1",
            "--seed", "5", "--no-progress",
        ]
        shard_files = [str(tmp_path / f"shard-{i}.json") for i in range(2)]
        for i, state in enumerate(shard_files):
            assert main(base + ["--shard", f"{i}/2", "--state", state]) == 0
        assert main(base + ["--state", str(tmp_path / "full.json")]) == 0
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert main(
            ["merge", *shard_files, "--out", str(merged),
             "--preset", "faultspace"]
        ) == 0
        captured = capsys.readouterr()
        assert "fault outcome shares" in captured.out
        assert merged.read_bytes() == (tmp_path / "full.json").read_bytes()
        curves = json.loads(merged.read_text())["aggregate"]["outcomes"]
        scenarios = {json.loads(k)[0] for k in curves["points"]}
        assert scenarios == {"poisson", "bursty", "permanent"}


SCHED_TINY = ["--axis", "u_total=0.5,1.5", "--axis", "n=8", "--axis", "rep=0,1,2"]


class TestShardMerge:
    def test_weighted_shards_merge_to_unsharded_bytes(self, tmp_path, capsys):
        """The PR's acceptance criterion, end to end on the CLI: 3 shards of
        the weighted preset merge to the unsharded snapshot, byte for byte."""
        base = [
            "campaign", "weighted", *WEIGHTED_TINY, "--workers", "1",
            "--seed", "3", "--no-progress",
        ]
        shard_files = [str(tmp_path / f"shard-{i}.json") for i in range(3)]
        for i, state in enumerate(shard_files):
            assert main(base + ["--shard", f"{i}/3", "--state", state]) == 0
        assert main(base + ["--state", str(tmp_path / "full.json")]) == 0
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert main(
            ["merge", *shard_files, "--out", str(merged), "--preset", "weighted"]
        ) == 0
        captured = capsys.readouterr()
        assert "weighted schedulability" in captured.out
        assert "weighted acceptance curves" in captured.out  # the ASCII plot
        assert "3 shard snapshot(s)" in captured.err
        assert merged.read_bytes() == (tmp_path / "full.json").read_bytes()

    def test_default_shard_state_paths_under_cache_dir(self, tmp_path, capsys):
        """--cache-dir gives every shard its own snapshot; merging them
        reproduces the full run's default snapshot."""
        cache = str(tmp_path / "cache")
        base = [
            "campaign", "sched", *SCHED_TINY, "--workers", "1",
            "--seed", "7", "--no-progress", "--cache-dir", cache,
        ]
        for i in range(3):
            assert main(base + ["--shard", f"{i}/3"]) == 0
        assert main(base) == 0
        aggregates = tmp_path / "cache" / "aggregates"
        shard_files = sorted(str(p) for p in aggregates.glob("*shard*of3.json"))
        full_files = [
            p for p in aggregates.glob("*.json") if "shard" not in p.name
        ]
        assert len(shard_files) == 3 and len(full_files) == 1
        capsys.readouterr()
        merged = tmp_path / "merged.json"
        assert main(["merge", *shard_files, "--out", str(merged)]) == 0
        assert merged.read_bytes() == full_files[0].read_bytes()

    def test_shard_tag_in_stats_line(self, tmp_path, capsys):
        assert main(
            ["campaign", "sched", *SCHED_TINY, "--workers", "1",
             "--no-progress", "--shard", "0/2",
             "--state", str(tmp_path / "s.json")]
        ) == 0
        assert "shard 0/2:" in capsys.readouterr().err

    def test_sharded_rerun_resumes_from_snapshot(self, tmp_path, capsys):
        """Shard runs stay streaming-only (no row collection), so a re-run
        skips every snapshotted point instead of recomputing the shard."""
        args = [
            "campaign", "sched", *SCHED_TINY, "--workers", "1",
            "--no-progress", "--shard", "0/2",
            "--state", str(tmp_path / "s.json"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        err = capsys.readouterr().err
        assert "0 computed" in err
        assert "aggregate: 0 folded" in err

    def test_merge_reports_missing_shard(self, tmp_path, capsys):
        base = [
            "campaign", "sched", *SCHED_TINY, "--workers", "1",
            "--seed", "7", "--no-progress",
        ]
        states = [str(tmp_path / f"s{i}.json") for i in range(2)]
        for i, state in enumerate(states):
            assert main(base + ["--shard", f"{i}/3", "--state", state]) == 0
        capsys.readouterr()
        assert main(["merge", *states, "--out", str(tmp_path / "m.json")]) == 1
        assert "missing" in capsys.readouterr().out
        assert not (tmp_path / "m.json").exists()

    def test_merge_allow_partial_previews_missing_shards(self, tmp_path, capsys):
        """The deliberate escape hatch: 2 of 3 shards preview-merge into a
        snapshot marked partial, while the default path (above) refuses."""
        base = [
            "campaign", "sched", *SCHED_TINY, "--workers", "1",
            "--seed", "7", "--no-progress",
        ]
        states = [str(tmp_path / f"s{i}.json") for i in range(2)]
        for i, state in enumerate(states):
            assert main(base + ["--shard", f"{i}/3", "--state", state]) == 0
        capsys.readouterr()
        preview = tmp_path / "preview.json"
        assert main(
            ["merge", *states, "--allow-partial", "--out", str(preview)]
        ) == 0
        captured = capsys.readouterr()
        assert "PARTIAL PREVIEW" in captured.err
        assert "[2]" in captured.err  # names the missing shard
        snap = json.loads(preview.read_text())
        assert snap["partial"] is True
        assert snap["missing_shards"] == [2]
        # a preview that is partial only because a shard is incomplete
        # names that reason instead of claiming "missing shards []"
        incomplete = json.loads((tmp_path / "s0.json").read_text())
        incomplete["folded"] = incomplete["folded"][:-1]
        (tmp_path / "s0.json").write_text(json.dumps(incomplete))
        states3 = states + [str(tmp_path / "s2.json")]
        assert main(
            base + ["--shard", "2/3", "--state", states3[2]]
        ) == 0
        capsys.readouterr()
        assert main(["merge", *states3, "--allow-partial"]) == 0
        assert "incomplete shard" in capsys.readouterr().err
        # the preview renders like any aggregate, but cannot be re-merged
        capsys.readouterr()
        assert main(["merge", str(preview), "--allow-partial"]) == 1
        assert "preview" in capsys.readouterr().out

    def test_merge_allow_partial_on_complete_set_is_canonical(self, tmp_path, capsys):
        base = [
            "campaign", "sched", *SCHED_TINY, "--workers", "1",
            "--seed", "7", "--no-progress",
        ]
        states = [str(tmp_path / f"s{i}.json") for i in range(3)]
        for i, state in enumerate(states):
            assert main(base + ["--shard", f"{i}/3", "--state", state]) == 0
        strict, permissive = tmp_path / "strict.json", tmp_path / "perm.json"
        assert main(["merge", *states, "--out", str(strict)]) == 0
        assert main(
            ["merge", *states, "--allow-partial", "--out", str(permissive)]
        ) == 0
        assert strict.read_bytes() == permissive.read_bytes()

    def test_sharded_batched_runs_merge_to_unbatched_bytes(self, tmp_path):
        """--batch composes with --shard: batched shard snapshots merge to
        the same bytes as unbatched ones."""
        base = [
            "campaign", "sched", *SCHED_TINY, "--workers", "2",
            "--seed", "7", "--no-progress",
        ]
        merged = {}
        for tag, extra in (("b1", ["--batch", "1"]), ("b4", ["--batch", "4"])):
            states = [str(tmp_path / f"{tag}-s{i}.json") for i in range(2)]
            for i, state in enumerate(states):
                assert main(
                    base + extra + ["--shard", f"{i}/2", "--state", state]
                ) == 0
            out = tmp_path / f"{tag}-merged.json"
            assert main(["merge", *states, "--out", str(out)]) == 0
            merged[tag] = out.read_bytes()
        assert merged["b1"] == merged["b4"]

    def test_merge_without_out_prints_snapshot(self, tmp_path, capsys):
        state = str(tmp_path / "s.json")
        assert main(
            ["campaign", "sched", *SCHED_TINY, "--workers", "1",
             "--no-progress", "--state", state]
        ) == 0
        capsys.readouterr()
        assert main(["merge", state]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["shard"]["count"] == 1

    def test_bad_shard_selector_rejected(self):
        for bad in ("3/3", "x/2", "1"):
            with pytest.raises(SystemExit):
                main(["campaign", "sched", "--shard", bad,
                      "--state", "/tmp/unused.json"])

    def test_shard_without_snapshot_destination_rejected(self):
        """A shard run's only output is its snapshot; running one with
        nowhere to persist it would silently discard the work."""
        with pytest.raises(SystemExit, match="--state or --cache-dir"):
            main(["campaign", "sched", *SCHED_TINY, "--shard", "0/2",
                  "--no-progress"])

    def test_sharded_paper_preset_skips_rendering(self, tmp_path, capsys):
        """table2/figure4 renderers need the full point set; a shard run
        must not crash on the partial aggregate after computing it."""
        assert main(
            ["campaign", "table2", "--workers", "1", "--no-progress",
             "--shard", "0/2", "--state", str(tmp_path / "t2.json")]
        ) == 0
        out = capsys.readouterr().out
        assert "repro merge" in out
        assert (tmp_path / "t2.json").exists()

    def test_failed_merge_leaves_no_out_file(self, tmp_path, capsys):
        """--preset validation runs before --out is written: a failed merge
        must not leave a plausible-looking snapshot behind."""
        state = str(tmp_path / "s.json")
        assert main(
            ["campaign", "sched", *SCHED_TINY, "--workers", "1",
             "--no-progress", "--state", state]
        ) == 0
        capsys.readouterr()
        out_file = tmp_path / "m.json"
        assert main(
            ["merge", state, "--out", str(out_file), "--preset", "weighted"]
        ) == 1
        assert "config digest mismatch" in capsys.readouterr().out
        assert not out_file.exists()


# Pre-refactor golden snapshots: the --strategy grid path must keep
# producing these bytes forever (the PR 6 acceptance criterion). The
# digests were recorded from the seed revision before the PointSource
# refactor landed.
WEIGHTED_GOLDEN = [
    "campaign", "weighted", "--axis", "u_total=0.8,1.6", "--axis", "n=8",
    "--axis", "period_hyperperiod=720.0", "--axis", "rep=0,1",
    "--axis", "rate=0.02", "--workers", "1", "--seed", "3", "--no-progress",
]
WEIGHTED_GOLDEN_SHA = (
    "76632870150036f760e79fe63453869c486c0065b13dd895ce6f973a36edc313"
)
WEIGHTED_GOLDEN_SHARD_SHAS = (
    "df6fc3189118dddc4a9f3f27db56579e3cb6baa819be793e38da5e819e3c69ce",
    "edcb1b0451e51702ba0f76f3507e4b934bb4042415b6b14b9e63497fd02f3482",
)
FAULTSPACE_GOLDEN = [
    "campaign", "faultspace", "--axis", "u_total=0.8",
    "--axis", "rate=0.02,0.1", "--axis", "rep=0,1", "--scenario", "poisson",
    "--workers", "1", "--seed", "7", "--no-progress",
]
FAULTSPACE_GOLDEN_SHA = (
    "a1c1d09b8a20d234ceaa27135adf02d60597b6fcff7ae53c27f6219c331df387"
)

ADAPTIVE_SMOKE = [
    "campaign", "weighted", "--strategy", "adaptive", "--ci-width", "0.4",
    "--axis", "u_total=0.8,2.4", "--axis", "n=6",
    "--axis", "period_hyperperiod=720.0", "--axis", "rep=0,1,2",
    "--axis", "rate=0.02", "--workers", "1", "--seed", "3", "--no-progress",
]


def _sha256(path):
    import hashlib

    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestAdaptiveCampaign:
    def test_grid_strategy_bytes_match_pre_refactor_goldens(self, tmp_path):
        weighted = tmp_path / "weighted.json"
        assert main(WEIGHTED_GOLDEN + ["--state", str(weighted)]) == 0
        assert _sha256(weighted) == WEIGHTED_GOLDEN_SHA
        faultspace = tmp_path / "faultspace.json"
        assert main(FAULTSPACE_GOLDEN + ["--state", str(faultspace)]) == 0
        assert _sha256(faultspace) == FAULTSPACE_GOLDEN_SHA

    def test_sharded_grid_bytes_match_pre_refactor_goldens(self, tmp_path):
        for index, golden in enumerate(WEIGHTED_GOLDEN_SHARD_SHAS):
            state = tmp_path / f"shard{index}.json"
            assert main(
                WEIGHTED_GOLDEN
                + ["--shard", f"{index}/2", "--state", str(state)]
            ) == 0
            assert _sha256(state) == golden

    def test_adaptive_smoke_deterministic_and_reports_rounds(
        self, tmp_path, capsys
    ):
        states = [tmp_path / "a.json", tmp_path / "b.json"]
        for state in states:
            assert main(ADAPTIVE_SMOKE + ["--state", str(state)]) == 0
        err = capsys.readouterr().err
        assert "adaptive:" in err and "round(s)" in err
        assert states[0].read_bytes() == states[1].read_bytes()
        snap = json.loads(states[0].read_text())
        assert snap["source"]["strategy"] == "adaptive"
        assert snap["source"]["complete"] is True
        # Resuming the finished snapshot is a no-op that rewrites nothing.
        before = states[0].read_bytes()
        assert main(ADAPTIVE_SMOKE + ["--state", str(states[0])]) == 0
        assert "adaptive: 0 round(s)" in capsys.readouterr().err
        assert states[0].read_bytes() == before

    def test_ci_width_requires_adaptive_strategy(self):
        with pytest.raises(SystemExit, match="--ci-width"):
            main(["campaign", "weighted", "--ci-width", "0.1", "--no-progress"])

    def test_max_points_requires_adaptive_strategy(self):
        with pytest.raises(SystemExit, match="--max-points"):
            main(
                ["campaign", "weighted", "--max-points", "10", "--no-progress"]
            )

    def test_adaptive_requires_supported_preset(self):
        with pytest.raises(SystemExit, match="adaptive"):
            main(
                ["campaign", "sched", "--strategy", "adaptive", "--no-progress"]
            )

    def test_adaptive_shard_needs_snapshot_destination(self):
        with pytest.raises(SystemExit, match="--state or --cache-dir"):
            main(
                ["campaign", "weighted", "--strategy", "adaptive",
                 "--shard", "0/2", "--no-progress"]
            )


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope.json")])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestPresetRegistryWiring:
    """Satellite: the CLI is a thin consumer of the preset registry — the
    on_error policy and every refusal text have one source of truth, so
    the drift the old parallel name-tuples allowed is now impossible."""

    def test_on_error_policy_wired_from_registry(self, monkeypatch):
        from repro.runner.presets import get_preset, preset_names

        class _Stop(Exception):
            pass

        captured = {}

        def fake_stream(runnable, aggregator, **kwargs):
            captured.update(kwargs)
            raise _Stop

        monkeypatch.setattr("repro.runner.stream_campaign", fake_stream)
        for name in preset_names():
            captured.clear()
            with pytest.raises(_Stop):
                main(["campaign", name, "--workers", "1", "--no-progress"])
            assert captured["on_error"] == get_preset(name).on_error, name

    def test_refusal_texts_come_from_registry(self):
        from repro.runner.presets import (
            adaptive_message,
            axis_override_message,
            scenario_message,
        )

        with pytest.raises(SystemExit) as exc:
            main(["campaign", "table2", "--axis", "u_total=1.0",
                  "--no-progress"])
        assert str(exc.value) == axis_override_message()
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "weighted", "--scenario", "bursty",
                  "--no-progress"])
        assert str(exc.value) == scenario_message()
        with pytest.raises(SystemExit) as exc:
            main(["campaign", "sched", "--strategy", "adaptive",
                  "--no-progress"])
        assert str(exc.value) == f"campaign: {adaptive_message()}"


class TestCampaignMergeByteIdentity:
    """Satellite: `repro merge --preset` renders through the same query
    layer as `repro campaign`, so one snapshot yields one report."""

    def test_weighted_report_identical_campaign_vs_merge(
        self, tmp_path, capsys
    ):
        state = tmp_path / "state.json"
        assert main(
            ["campaign", "weighted", *WEIGHTED_TINY, "--workers", "1",
             "--seed", "3", "--no-progress", "--state", str(state)]
        ) == 0
        campaign_report = capsys.readouterr().out
        assert main(["merge", str(state), "--preset", "weighted",
                     "--out", str(tmp_path / "merged.json")]) == 0
        merge_report = capsys.readouterr().out
        assert merge_report == campaign_report
        assert "weighted schedulability" in merge_report

    def test_merge_refuses_foreign_preset_via_query_layer(
        self, tmp_path, capsys
    ):
        state = tmp_path / "state.json"
        assert main(
            ["campaign", "weighted", *WEIGHTED_TINY, "--workers", "1",
             "--no-progress", "--state", str(state)]
        ) == 0
        capsys.readouterr()
        out_file = tmp_path / "merged.json"
        assert main(["merge", str(state), "--preset", "faultspace",
                     "--out", str(out_file)]) == 1
        out = capsys.readouterr().out
        assert (
            "merge failed: snapshots were not built by the 'faultspace' "
            "preset's aggregate (config digest mismatch)"
        ) in out
        # a refused merge must not leave a merged snapshot behind
        assert not out_file.exists()


class TestTelemetryAndProfile:
    """--telemetry traces + run manifests, and the profile command."""

    AXES = ["--axis", "u_total=0.5,1.0", "--axis", "n=4", "--axis", "rep=0,1"]

    def _run(self, tmp_path, name, *extra):
        out = tmp_path / f"{name}.json"
        rc = main([
            "campaign", "sched", *self.AXES, "--workers", "1",
            "--no-progress", "--out", str(out), *extra,
        ])
        assert rc == 0
        return out

    def test_telemetry_writes_trace_and_manifest(self, tmp_path, capsys):
        tel = tmp_path / "tel"
        self._run(tmp_path, "traced", "--telemetry", str(tel))
        capsys.readouterr()
        trace = tel / "trace.ndjson"
        manifest_path = tel / "run-manifest.json"
        assert trace.exists() and manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["config"]["preset"] == "sched"
        assert manifest["stats"]["folded"] == 4
        assert manifest["counters"]["engine.points"] == 4
        assert "campaign" in manifest["phases"]
        assert len(manifest["aggregate_digest"]) == 64

    def test_output_byte_identical_with_telemetry_on_and_off(
        self, tmp_path, capsys
    ):
        plain = self._run(tmp_path, "plain")
        traced = self._run(
            tmp_path, "traced", "--telemetry", str(tmp_path / "tel")
        )
        capsys.readouterr()
        assert plain.read_bytes() == traced.read_bytes()

    def test_profile_renders_phase_breakdown(self, tmp_path, capsys):
        tel = tmp_path / "tel"
        self._run(tmp_path, "traced", "--telemetry", str(tel))
        capsys.readouterr()
        assert main(["profile", str(tel)]) == 0
        out = capsys.readouterr().out
        assert "root span: campaign" in out
        assert "coverage:" in out
        assert "execute" in out
        assert "manifest:" in out  # the sibling run-manifest one-liner

    def test_profile_min_coverage_gate(self, tmp_path, capsys):
        tel = tmp_path / "tel"
        self._run(tmp_path, "traced", "--telemetry", str(tel))
        capsys.readouterr()
        assert main(["profile", str(tel), "--min-coverage", "0.95"]) == 0
        # an impossible bar fails with a diagnostic on stderr
        assert main(["profile", str(tel), "--min-coverage", "1.01"]) == 1
        assert "coverage" in capsys.readouterr().err

    def test_profile_missing_trace_fails_cleanly(self, tmp_path, capsys):
        assert main(["profile", str(tmp_path / "absent")]) == 1
        assert "profile failed" in capsys.readouterr().err
