"""CLI tests (direct main() invocation, no subprocess)."""

import json

import pytest

from repro.cli import main
from repro.experiments import paper_taskset
from repro.model import taskset_to_json


@pytest.fixture
def ts_file(tmp_path):
    path = tmp_path / "paper.json"
    path.write_text(taskset_to_json(paper_taskset()))
    return str(path)


class TestAnalyze:
    def test_analyze_ok(self, ts_file, capsys):
        assert main(["analyze", ts_file]) == 0
        out = capsys.readouterr().out
        assert "13 tasks" in out
        assert "FT[0]" in out

    def test_analyze_rm(self, ts_file, capsys):
        assert main(["analyze", ts_file, "--alg", "RM"]) == 0


class TestDesign:
    def test_design_human_output(self, ts_file, capsys):
        assert main(["design", ts_file, "--otot", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "min-overhead-bandwidth" in out
        assert "2.96" in out  # the paper period

    def test_design_json_output(self, ts_file, capsys):
        assert main(["design", ts_file, "--otot", "0.05", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["period"] == pytest.approx(2.966, abs=2e-3)
        assert set(data["usable"]) == {"FT", "FS", "NF"}

    def test_design_max_slack(self, ts_file, capsys):
        assert main(
            ["design", ts_file, "--otot", "0.05", "--goal", "max-slack"]
        ) == 0
        assert "max-slack" in capsys.readouterr().out

    def test_design_infeasible_overhead(self, ts_file, capsys):
        assert main(["design", ts_file, "--otot", "0.9"]) == 1
        assert "failed" in capsys.readouterr().out


class TestRegion:
    def test_region_plot_and_points(self, ts_file, capsys):
        assert main(["region", ts_file, "--otot", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "P (period)" in out
        assert "max admissible Otot" in out


class TestSimulate:
    def test_simulate_clean(self, ts_file, capsys):
        assert main(
            ["simulate", ts_file, "--otot", "0.05", "--cycles", "30"]
        ) == 0
        assert "0 deadline misses" in capsys.readouterr().out

    def test_simulate_with_faults(self, ts_file, capsys):
        rc = main(
            [
                "simulate", ts_file, "--otot", "0.05", "--cycles", "30",
                "--fault-rate", "0.05", "--seed", "1",
            ]
        )
        assert rc == 0
        assert "faults injected" in capsys.readouterr().out


class TestPaper:
    def test_paper_command(self, capsys):
        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        assert "3.176" in out and "Table 2" in out


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope.json")])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
