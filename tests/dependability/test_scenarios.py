"""Fault-scenario library tests: determinism, platform sizing, round trips."""

import numpy as np
import pytest

from repro.dependability import (
    BurstyScenario,
    CorrelatedScenario,
    IntermittentScenario,
    PermanentScenario,
    PoissonScenario,
    scenario_from_params,
    scenario_names,
)

ALL_KINDS = ("poisson", "bursty", "correlated", "intermittent", "permanent")


def make(kind, rate=0.2, **kwargs):
    return scenario_from_params({"scenario": kind, "rate": rate, **kwargs})


class TestRegistry:
    def test_all_kinds_registered(self):
        assert set(scenario_names()) == set(ALL_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault scenario"):
            scenario_from_params({"scenario": "cosmic", "rate": 0.1})

    def test_default_kind_is_poisson(self):
        assert isinstance(scenario_from_params({"rate": 0.1}), PoissonScenario)

    def test_unrelated_spec_params_ignored(self):
        s = scenario_from_params(
            {"scenario": "bursty", "rate": 0.1, "u_total": 0.8, "rep": 3}
        )
        assert isinstance(s, BurstyScenario)


class TestContract:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_deterministic_given_seed(self, kind):
        s = make(kind)
        a = s.generate(300.0, np.random.default_rng(7), core_count=4)
        b = s.generate(300.0, np.random.default_rng(7), core_count=4)
        assert a == b

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_within_horizon_and_platform(self, kind):
        faults = make(kind).generate(
            300.0, np.random.default_rng(3), core_count=6
        )
        assert all(0.0 <= f.time < 300.0 for f in faults)
        assert all(0 <= f.core < 6 for f in faults)
        assert all(f.core_count == 6 for f in faults)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_serialization_round_trip(self, kind):
        s = make(kind)
        restored = scenario_from_params(s.to_dict())
        assert restored == s
        assert restored.to_dict() == s.to_dict()

    @pytest.mark.parametrize("kind", ("poisson", "bursty", "correlated"))
    def test_strikes_cover_large_platforms(self, kind):
        # the old hardcoded 0..3 range would never hit cores 4+
        faults = make(kind, rate=1.0).generate(
            500.0, np.random.default_rng(1), core_count=8
        )
        assert {f.core for f in faults} - set(range(4))


class TestBursty:
    def test_bursts_violate_wide_separation(self):
        s = BurstyScenario(0.02, burst_factor=100.0, mean_quiet=20.0, mean_burst=5.0)
        times = [
            f.time
            for f in s.generate(2000.0, np.random.default_rng(2), core_count=4)
        ]
        gaps = [b - a for a, b in zip(times, times[1:])]
        # showers produce much tighter spacing than the quiet-rate mean
        assert min(gaps) < 1.0 < max(gaps)

    def test_burst_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            BurstyScenario(0.1, burst_factor=0.5)


class TestCorrelated:
    def test_multi_core_strikes_share_an_instant(self):
        s = CorrelatedScenario(0.5, spread=0.9)
        faults = s.generate(500.0, np.random.default_rng(5), core_count=4)
        by_time = {}
        for f in faults:
            by_time.setdefault(f.time, set()).add(f.core)
        multi = [cores for cores in by_time.values() if len(cores) > 1]
        assert multi, "spread=0.9 must produce simultaneous multi-core strikes"

    def test_zero_spread_is_single_core(self):
        s = CorrelatedScenario(0.5, spread=0.0)
        faults = s.generate(500.0, np.random.default_rng(5), core_count=4)
        times = [f.time for f in faults]
        assert len(times) == len(set(times))

    def test_spread_validated(self):
        with pytest.raises(ValueError):
            CorrelatedScenario(0.1, spread=1.0)


class TestIntermittent:
    def test_pinned_to_one_core(self):
        s = IntermittentScenario(0.1, core=2)
        faults = s.generate(500.0, np.random.default_rng(4), core_count=4)
        assert faults and {f.core for f in faults} == {2}

    def test_unpinned_core_drawn_within_platform(self):
        s = IntermittentScenario(0.1)
        faults = s.generate(500.0, np.random.default_rng(4), core_count=2)
        assert len({f.core for f in faults}) == 1
        assert faults[0].core in (0, 1)

    def test_pinned_core_outside_platform_rejected(self):
        s = IntermittentScenario(0.1, core=5)
        with pytest.raises(ValueError, match="outside the platform"):
            s.generate(100.0, np.random.default_rng(0), core_count=4)


class TestPermanent:
    def test_dead_core_faults_from_onset_at_fixed_cadence(self):
        s = PermanentScenario(0.5, onset_fraction=0.25, core=1)
        faults = s.generate(100.0, np.random.default_rng(0), core_count=4)
        assert {f.core for f in faults} == {1}
        assert faults[0].time == pytest.approx(25.0)
        gaps = {
            round(b.time - a.time, 9) for a, b in zip(faults, faults[1:])
        }
        assert gaps == {2.0}

    def test_onset_fraction_validated(self):
        for bad in (-0.01, 1.01):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                PermanentScenario(0.1, onset_fraction=bad)

    def test_onset_zero_kills_the_core_at_t0(self):
        # Exact boundary: the first strike lands exactly at 0, and the
        # cadence covers the whole horizon.
        s = PermanentScenario(0.5, onset_fraction=0.0, core=0)
        faults = s.generate(10.0, np.random.default_rng(0), core_count=4)
        assert faults[0].time == 0.0
        assert len(faults) == 5  # strikes at 0, 2, 4, 6, 8

    def test_onset_one_never_dies(self):
        # Exact boundary: onset == horizon is outside [0, horizon), so the
        # core survives the whole run (empty stream, not one final strike).
        s = PermanentScenario(0.5, onset_fraction=1.0, core=0)
        assert s.generate(10.0, np.random.default_rng(0), core_count=4) == []

    def test_onset_boundaries_roundtrip_params(self):
        for fraction in (0.0, 1.0):
            s = PermanentScenario(
                0.1, onset_fraction=fraction, core=1
            )
            clone = PermanentScenario.from_params(s.params_dict() | {"rate": 0.1})
            assert clone.onset_fraction == fraction


class TestFaultCampaignIntegration:
    def test_campaign_accepts_scenario(self, paper_part, paper_config_b):
        from repro.faults import FaultCampaign

        camp = FaultCampaign(
            paper_part, paper_config_b,
            scenario=BurstyScenario(0.05, burst_factor=10.0),
        )
        a = camp.run(horizon=paper_config_b.period * 30, seed=9)
        b = camp.run(horizon=paper_config_b.period * 30, seed=9)
        assert a.injected == b.injected > 0
        assert a.outcomes == b.outcomes


class TestDependabilityPoint:
    def test_poisson_keeps_single_fault_spacing_by_default(self):
        """The dependability point's poisson baseline must honour the
        paper's single-fault assumption (one platform period between
        transients) unless the spec overrides min_separation."""
        from repro.runner import PointSpec, get_experiment, point_seed

        fn = get_experiment("dependability")
        cycles = 20
        base = {"scenario": "poisson", "rate": 2.0, "cycles": cycles,
                "source": "paper"}
        spaced = fn(base, point_seed(PointSpec("dependability", base), 0))
        # spacing >= one period caps the count at one fault per cycle
        assert 0 < spaced["injected"] <= cycles + 1
        dense_params = {**base, "min_separation": 0.0}
        dense = fn(
            dense_params,
            point_seed(PointSpec("dependability", dense_params), 0),
        )
        assert dense["injected"] > cycles + 1
