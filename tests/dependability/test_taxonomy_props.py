"""Property tests: the categorical-count merge contract.

The dependability curves only merge bit-identically across shards, batch
sizes and resumes if :class:`CategoricalCountAccumulator` (alone and as a
curve sub-accumulator) is associative, commutative, identity-preserving,
fold-order-insensitive and exactly serializable — the same contract the
numeric accumulators satisfy in ``tests/runner/test_aggregate_props.py``.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import (
    Aggregator,
    CategoricalCountAccumulator,
    CurveAccumulator,
    PointSpec,
    accumulator_from_state,
    canonical_json,
    categorical_metric,
    merge_states,
)

categories = st.sampled_from(
    ["masked", "silenced", "corrupted", "harmless", "FT/masked", "NF/corrupted"]
)
counts = st.integers(min_value=0, max_value=50)
#: One fold input: a single category or a whole {category: count} record.
fold_inputs = st.one_of(
    categories,
    st.dictionaries(categories, counts, max_size=6),
)
keys = st.sampled_from(
    [["poisson", 0.05], ["bursty", 0.1], ["permanent", 0.05], 0.02]
)
folds = st.lists(st.tuples(keys, fold_inputs), max_size=40)


def build(kind, seq):
    if kind == "catcount":
        acc = CategoricalCountAccumulator()
        for _, v in seq:
            acc.fold(v)
    else:
        acc = CurveAccumulator(CategoricalCountAccumulator())
        for k, v in seq:
            acc.fold(k, v)
    return acc


def empty(kind):
    return build(kind, [])


def state(acc):
    return canonical_json(acc.state_dict())


kinds = st.sampled_from(["catcount", "catcount-curve"])


class TestCategoricalMergeContract:
    @given(kinds, folds, folds, folds)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_associative(self, kind, xs, ys, zs):
        a, b, c = build(kind, xs), build(kind, ys), build(kind, zs)
        assert state(a.merge(b).merge(c)) == state(a.merge(b.merge(c)))

    @given(kinds, folds, folds)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_commutative(self, kind, xs, ys):
        a, b = build(kind, xs), build(kind, ys)
        assert state(a.merge(b)) == state(b.merge(a))

    @given(kinds, folds)
    @settings(max_examples=60, deadline=None)
    def test_empty_accumulator_is_merge_identity(self, kind, xs):
        a = build(kind, xs)
        assert state(a.merge(empty(kind))) == state(a)
        assert state(empty(kind).merge(a)) == state(a)

    @given(kinds, folds, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_fold_order_is_irrelevant(self, kind, xs, rnd):
        shuffled = list(xs)
        rnd.shuffle(shuffled)
        assert state(build(kind, xs)) == state(build(kind, shuffled))

    @given(
        kinds,
        folds,
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_worker_sharding_matches_sequential_fold(
        self, kind, xs, workers, batch
    ):
        # The engine's fold shape: chunk into batches (non-dividing sizes
        # leave a short tail), deal batches round-robin to workers, merge
        # the workers — must equal one sequential fold bit-for-bit.
        batches = [xs[i : i + batch] for i in range(0, len(xs), batch)]
        shards = [
            build(kind, [f for b in batches[w::workers] for f in b])
            for w in range(workers)
        ]
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        assert state(merged) == state(build(kind, xs))

    @given(kinds, folds)
    @settings(max_examples=60, deadline=None)
    def test_serialization_round_trip(self, kind, xs):
        a = build(kind, xs)
        restored = accumulator_from_state(json.loads(state(a)))
        assert restored == a
        assert state(restored) == state(a)
        assert json.dumps(restored.summary(), sort_keys=True) == json.dumps(
            a.summary(), sort_keys=True
        )

    @given(folds, folds)
    @settings(max_examples=40, deadline=None)
    def test_merge_states_cross_process_path(self, xs, ys):
        # shard snapshots merge via serialized states, no fold rules
        def agg(seq):
            a = Aggregator([categorical_metric("outcomes", "outcomes")])
            for i, (_, v) in enumerate(seq):
                a.fold(
                    PointSpec("dependability", {"rep": i}), {"outcomes": v}
                )
            return a

        left, right = agg(xs), agg([(k, v) for k, v in ys])
        via_states = merge_states(left.state_dict(), right.state_dict())
        direct = left.merge(right).state_dict()
        assert canonical_json(via_states) == canonical_json(direct)

    @given(folds)
    @settings(max_examples=40, deadline=None)
    def test_zero_counts_never_reach_the_state(self, xs):
        a = build("catcount", xs)
        assert all(n > 0 for n in a.counts.values())
        assert a.total == sum(a.counts.values())
