"""Taxonomy-bridge tests: records, Wilson intervals, categorical metrics."""

import pytest

from repro.dependability import (
    dependability_record,
    format_interval,
    mode_key,
    outcome_curve_metric,
    wilson_interval,
)
from repro.faults import Fault, FaultCampaign, FaultOutcome
from repro.model import Mode
from repro.runner import Aggregator, PointSpec


@pytest.fixture(scope="module")
def campaign_result(paper_part, paper_config_b):
    camp = FaultCampaign(paper_part, paper_config_b, rate=0.08)
    return camp.run(horizon=paper_config_b.period * 40, seed=11)


class TestRecord:
    def test_counts_are_consistent(self, campaign_result):
        rec = dependability_record(campaign_result)
        assert sum(rec["outcomes"].values()) == rec["injected"]
        assert sum(rec["outcomes_by_mode"].values()) == rec["injected"]
        assert rec["ft_miss"] == (rec["ft_misses"] > 0)
        assert rec["any_corruption"] == (rec["outcomes"]["corrupted"] > 0)
        assert rec["corrupted_jobs"] == rec["outcomes"]["corrupted"]

    def test_all_outcome_categories_present(self, campaign_result):
        rec = dependability_record(campaign_result)
        assert set(rec["outcomes"]) == {str(o) for o in FaultOutcome}

    def test_mode_outcome_keys_are_flat_strings(self, campaign_result):
        rec = dependability_record(campaign_result)
        for key in rec["outcomes_by_mode"]:
            mode, _, outcome = key.partition("/")
            assert mode in {"FT", "FS", "NF", "idle"}
            assert outcome in {str(o) for o in FaultOutcome}

    def test_json_serializable(self, campaign_result):
        from repro.runner import canonical_json

        canonical_json(dependability_record(campaign_result))

    def test_empty_campaign_record(self, paper_part, paper_config_b):
        res = FaultCampaign(paper_part, paper_config_b).run(
            horizon=paper_config_b.period * 2, faults=[]
        )
        rec = dependability_record(res)
        assert rec["injected"] == 0
        assert not rec["ft_miss"] and not rec["any_corruption"]

    def test_mode_key(self):
        assert mode_key(Mode.FT) == "FT"
        assert mode_key(None) == "idle"


class TestWilson:
    def test_known_value(self):
        # 8/10 at 95%: the standard worked example of the Wilson interval
        lo, hi = wilson_interval(8, 10)
        assert lo == pytest.approx(0.4902, abs=1e-3)
        assert hi == pytest.approx(0.9433, abs=1e-3)

    def test_contains_point_estimate_and_stays_in_unit_interval(self):
        for successes, total in [(0, 7), (7, 7), (3, 11), (1, 1000)]:
            lo, hi = wilson_interval(successes, total)
            assert 0.0 <= lo <= successes / total <= hi <= 1.0

    def test_empty_is_none(self):
        assert wilson_interval(0, 0) is None
        assert format_interval(None) == "n/a"

    def test_narrower_with_more_samples(self):
        lo1, hi1 = wilson_interval(5, 10)
        lo2, hi2 = wilson_interval(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(-1, 3)

    def test_format(self):
        assert format_interval((0.25, 0.75)) == "[0.250,0.750]"


class TestOutcomeCurveMetric:
    def test_counts_stream_into_rate_curves(self):
        agg = Aggregator(
            [outcome_curve_metric("outcomes", ["scenario", "rate"], "outcomes")]
        )
        mk = lambda scen, rate, masked, corrupted: (  # noqa: E731
            PointSpec("dependability", {"scenario": scen, "rate": rate}),
            {"outcomes": {"masked": masked, "corrupted": corrupted}},
        )
        agg.fold(*mk("poisson", 0.05, 3, 1))
        agg.fold(*mk("poisson", 0.05, 5, 1))
        agg.fold(*mk("bursty", 0.05, 1, 0))
        acc = agg["outcomes"].bin(["poisson", 0.05])
        assert acc.total == 10
        assert acc.rate("masked") == pytest.approx(0.8)
        assert agg["outcomes"].bin(["bursty", 0.05]).total == 1

    def test_error_points_are_skipped(self):
        agg = Aggregator([outcome_curve_metric("outcomes", "rate", "outcomes")])
        spec = PointSpec("dependability", {"rate": 0.05})
        agg.fold(spec, {"error": "DesignError: infeasible"})
        assert agg["outcomes"].points == {}
