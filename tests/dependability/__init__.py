"""Dependability subsystem tests."""
