"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FeasibleRegion, Overheads, design_platform
from repro.experiments import paper_partition, paper_taskset
from repro.model import Mode, Task, TaskSet


@pytest.fixture(scope="session")
def paper_ts() -> TaskSet:
    """The Table 1 task set."""
    return paper_taskset()


@pytest.fixture(scope="session")
def paper_part():
    """The Section 4 manual partition."""
    return paper_partition()


@pytest.fixture(scope="session")
def paper_region_edf(paper_part) -> FeasibleRegion:
    """EDF feasible region of the paper example (expensive; share it)."""
    return FeasibleRegion(paper_part, "EDF")


@pytest.fixture(scope="session")
def paper_region_rm(paper_part) -> FeasibleRegion:
    """RM feasible region of the paper example."""
    return FeasibleRegion(paper_part, "RM")


@pytest.fixture(scope="session")
def paper_config_b(paper_part, paper_region_edf):
    """Table 2 row (b): min-overhead-bandwidth design."""
    return design_platform(
        paper_part, "EDF", Overheads.uniform(0.05),
        "min-overhead-bandwidth", region=paper_region_edf,
    )


@pytest.fixture(scope="session")
def paper_config_c(paper_part, paper_region_edf):
    """Table 2 row (c): max-slack design."""
    return design_platform(
        paper_part, "EDF", Overheads.uniform(0.05),
        "max-slack", region=paper_region_edf,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for generator tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_nf_taskset() -> TaskSet:
    """Three light NF tasks with an integer hyperperiod of 24."""
    return TaskSet(
        [
            Task("a", wcet=1, period=4, mode=Mode.NF),
            Task("b", wcet=1, period=6, mode=Mode.NF),
            Task("c", wcet=2, period=12, mode=Mode.NF),
        ]
    )


@pytest.fixture
def tight_taskset() -> TaskSet:
    """Full-utilization pair (U = 1.0) — schedulable by EDF, not by RM."""
    return TaskSet(
        [
            Task("x", wcet=2, period=4),
            Task("y", wcet=4, period=8),
        ]
    )
