"""Unit tests for numeric helpers."""

import math
from fractions import Fraction

import pytest

from repro.util import (
    EPS,
    approx_ge,
    approx_le,
    feq,
    fgt,
    flt,
    fuzzy_ceil,
    fuzzy_floor,
    lcm_fractions,
    lcm_ints,
    to_fraction,
)


class TestFloatComparisons:
    def test_feq_exact(self):
        assert feq(1.0, 1.0)

    def test_feq_within_abs_tolerance(self):
        assert feq(1.0, 1.0 + 1e-12)

    def test_feq_within_rel_tolerance_large_values(self):
        assert feq(1e12, 1e12 * (1 + 1e-10))

    def test_feq_rejects_distinct(self):
        assert not feq(1.0, 1.001)

    def test_flt_strict(self):
        assert flt(1.0, 2.0)
        assert not flt(2.0, 1.0)

    def test_flt_rejects_equal_within_tolerance(self):
        assert not flt(1.0, 1.0 + 1e-12)

    def test_fgt_strict(self):
        assert fgt(2.0, 1.0)
        assert not fgt(1.0, 2.0)

    def test_approx_le(self):
        assert approx_le(1.0, 1.0)
        assert approx_le(1.0 + 1e-12, 1.0)
        assert not approx_le(1.1, 1.0)

    def test_approx_ge(self):
        assert approx_ge(1.0, 1.0)
        assert approx_ge(1.0 - 1e-12, 1.0)
        assert not approx_ge(0.9, 1.0)


class TestFuzzyRounding:
    def test_fuzzy_floor_plain(self):
        assert fuzzy_floor(2.7) == 2

    def test_fuzzy_floor_just_below_integer(self):
        assert fuzzy_floor(3.0 - 1e-12) == 3

    def test_fuzzy_floor_exact_integer(self):
        assert fuzzy_floor(5.0) == 5

    def test_fuzzy_floor_negative(self):
        assert fuzzy_floor(-1.2) == -2

    def test_fuzzy_ceil_plain(self):
        assert fuzzy_ceil(2.3) == 3

    def test_fuzzy_ceil_just_above_integer(self):
        assert fuzzy_ceil(3.0 + 1e-12) == 3

    def test_fuzzy_ceil_exact_integer(self):
        assert fuzzy_ceil(5.0) == 5

    def test_fuzzy_floor_never_jumps_multiple_integers(self):
        # Relative tolerance at 1e12 is ~1000, but snapping must stay at the
        # nearest integer — never leap across several of them.
        x = 1e12 - 1.0
        assert fuzzy_floor(x) == int(x)

    def test_fuzzy_ceil_never_jumps_multiple_integers(self):
        x = 1e12 + 1.0
        assert fuzzy_ceil(x) == int(x)


class TestToFraction:
    def test_int_passthrough(self):
        assert to_fraction(7) == Fraction(7)

    def test_fraction_passthrough(self):
        f = Fraction(3, 7)
        assert to_fraction(f) is f or to_fraction(f) == f

    def test_simple_decimal(self):
        assert to_fraction(0.25) == Fraction(1, 4)

    def test_repeating_decimal_recovered(self):
        assert to_fraction(1 / 3) == Fraction(1, 3)

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError):
            to_fraction(math.inf)
        with pytest.raises(ValueError):
            to_fraction(math.nan)


class TestLcm:
    def test_lcm_ints_basic(self):
        assert lcm_ints([4, 6]) == 12

    def test_lcm_ints_empty(self):
        assert lcm_ints([]) == 1

    def test_lcm_ints_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lcm_ints([4, 0])

    def test_lcm_fractions_integers(self):
        assert lcm_fractions([Fraction(6), Fraction(8), Fraction(12)]) == 24

    def test_lcm_fractions_paper_periods(self):
        periods = [Fraction(p) for p in (6, 8, 12, 10, 24)]
        assert lcm_fractions(periods) == 120

    def test_lcm_fractions_rationals(self):
        # lcm(1/2, 1/3) = 1 ; lcm(3/4, 1/2) = 3/2
        assert lcm_fractions([Fraction(1, 2), Fraction(1, 3)]) == 1
        assert lcm_fractions([Fraction(3, 4), Fraction(1, 2)]) == Fraction(3, 2)

    def test_lcm_fractions_empty(self):
        assert lcm_fractions([]) == 1

    def test_lcm_fractions_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lcm_fractions([Fraction(-1, 2)])

    def test_lcm_is_multiple_of_inputs(self):
        vals = [Fraction(5, 3), Fraction(7, 6), Fraction(2)]
        out = lcm_fractions(vals)
        for v in vals:
            assert (out / v).denominator == 1
