"""Unit tests for argument validation helpers."""

import pytest

from repro.util import (
    check_finite,
    check_in_range,
    check_nonneg,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_match(self):
        check_type("x", 1, int)

    def test_accepts_tuple(self):
        check_type("x", 1.5, (int, float))

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "nope", int)

    def test_message_names_all_alternatives(self):
        with pytest.raises(TypeError, match="int or float"):
            check_type("x", "nope", (int, float))


class TestCheckFinite:
    def test_accepts_numbers(self):
        check_finite("x", 0.0)
        check_finite("x", -3)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite("x", float("inf"))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite("x", float("nan"))

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            check_finite("x", True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_finite("x", "1.0")


class TestCheckSign:
    def test_positive_accepts(self):
        check_positive("x", 0.1)

    def test_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="> 0"):
            check_positive("x", 0.0)

    def test_positive_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)

    def test_nonneg_accepts_zero(self):
        check_nonneg("x", 0.0)

    def test_nonneg_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_nonneg("x", -0.001)


class TestCheckInRange:
    def test_closed_interval(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)

    def test_open_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, lo_open=True)
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 0.0, 1.0, hi_open=True)

    def test_out_of_range_message_shows_interval(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_in_range("x", 2.0, 0, 1)
