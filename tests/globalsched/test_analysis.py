"""Unit tests for global scheduling bounds."""

import pytest

from repro.globalsched import (
    global_edf_density_test,
    global_edf_gfb_test,
    global_rm_utilization_test,
)
from repro.globalsched.analysis import global_edf_supply_test
from repro.model import Task, TaskSet
from repro.supply import DedicatedSupply, LinearSupply


class TestGFB:
    def test_light_set_accepted(self):
        ts = TaskSet([Task(f"t{i}", 1, 10) for i in range(4)])  # U=0.4, umax=0.1
        assert global_edf_gfb_test(ts, 2)

    def test_bound_is_tight_formula(self):
        # u_max = 0.5, m = 2: bound = 2*0.5 + 0.5 = 1.5.
        ts = TaskSet([Task("a", 5, 10), Task("b", 5, 10), Task("c", 5, 10)])
        assert global_edf_gfb_test(ts, 2)  # U = 1.5 == bound
        ts2 = ts.add(Task("d", 1, 10))     # U = 1.6 > bound
        assert not global_edf_gfb_test(ts2, 2)

    def test_dhall_effect_visible(self):
        # One heavy task (u ~ 1): GFB collapses to U <= 1 for any m.
        ts = TaskSet([Task("heavy", 9.9, 10), Task("light", 1, 10)])
        assert not global_edf_gfb_test(ts, 4)

    def test_empty(self):
        assert global_edf_gfb_test(TaskSet(), 4)

    def test_requires_implicit_deadlines(self):
        ts = TaskSet([Task("a", 1, 10, deadline=5)])
        with pytest.raises(ValueError):
            global_edf_gfb_test(ts, 2)

    def test_bad_m(self):
        with pytest.raises(ValueError):
            global_edf_gfb_test(TaskSet(), 0)


class TestDensityBound:
    def test_constrained_deadlines_supported(self):
        ts = TaskSet([Task("a", 1, 10, deadline=5), Task("b", 1, 10, deadline=5)])
        assert global_edf_density_test(ts, 2)

    def test_density_overload_rejected(self):
        ts = TaskSet([Task("a", 5, 10, deadline=5), Task("b", 5, 10, deadline=5)])
        # densities 1.0 each: d_max = 1 -> bound = m*(0)+1 = 1 < 2.
        assert not global_edf_density_test(ts, 2)


class TestGlobalRM:
    def test_light_set_accepted(self):
        ts = TaskSet([Task(f"t{i}", 1, 10) for i in range(4)])
        assert global_rm_utilization_test(ts, 2)

    def test_rm_bound_half_of_edf(self):
        # U = 1.5, u_max = 0.5, m = 2: RM bound = 1*(0.5)+0.5 = 1.0 < 1.5.
        ts = TaskSet([Task("a", 5, 10), Task("b", 5, 10), Task("c", 5, 10)])
        assert not global_rm_utilization_test(ts, 2)
        assert global_edf_gfb_test(ts, 2)


class TestSupplyAwareGlobal:
    def test_dedicated_supply_reduces_to_gfb(self):
        ts = TaskSet([Task("a", 2, 10), Task("b", 2, 10)])
        assert global_edf_supply_test(ts, 2, DedicatedSupply()) == \
            global_edf_gfb_test(ts, 2)

    def test_delay_eats_short_deadlines(self):
        ts = TaskSet([Task("a", 1, 10, deadline=2)])
        assert not global_edf_supply_test(ts, 4, LinearSupply(0.5, 2.0))
        assert global_edf_supply_test(ts, 4, LinearSupply(0.9, 0.5))

    def test_zero_alpha_rejected(self):
        from repro.supply import NullSupply

        ts = TaskSet([Task("a", 1, 10)])
        assert not global_edf_supply_test(ts, 4, NullSupply())
