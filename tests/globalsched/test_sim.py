"""Unit tests for the global scheduling simulator."""

import pytest

from repro.globalsched import simulate_global
from repro.globalsched.compare import (
    compare_nf_strategies,
    validate_global_by_simulation,
)
from repro.model import Task, TaskSet


class TestGlobalSim:
    def test_parallel_speedup(self):
        # U = 1.5: overloads one processor, trivial on two.
        ts = TaskSet([Task("a", 6, 8), Task("b", 6, 8)])
        res1 = simulate_global(ts, "EDF", 1, [(0, 16)], 16.0)
        res2 = simulate_global(ts, "EDF", 2, [(0, 16)], 16.0)
        assert res1.misses  # 12 units of work per 8-unit window
        assert not res2.misses

    def test_m_bounded_parallelism(self):
        # Three ready jobs on two processors: at most 2 run at a time.
        ts = TaskSet([Task(f"t{i}", 2, 8) for i in range(3)])
        res = simulate_global(ts, "EDF", 2, [(0, 8)], 8.0)
        # busy time = 6 units of work; makespan cannot beat 3
        procs = {s.processor for s in res.trace.slices}
        assert procs <= {"G[0]", "G[1]"}
        assert res.trace.busy_time() == pytest.approx(6.0)

    def test_no_misses_on_light_load(self):
        ts = TaskSet([Task(f"t{i}", 1, 10) for i in range(6)])
        res = simulate_global(ts, "EDF", 4, [(0, 40)], 40.0)
        assert not res.misses

    def test_windows_gate_execution(self):
        ts = TaskSet([Task("a", 1, 4)])
        res = simulate_global(ts, "EDF", 2, [(2, 4), (6, 8)], 8.0)
        for s in res.trace.slices:
            assert 2 - 1e-9 <= s.start and s.end <= 8 + 1e-9

    def test_migrations_counted(self):
        # a(C=3) and b(C=1,T=2) on one processor... on m=1 a job resumes on
        # the same processor: 0 migrations. This checks the counter logic.
        ts = TaskSet([Task("hi", 1, 2), Task("lo", 3, 8, deadline=8)])
        res = simulate_global(ts, "RM", 1, [(0, 8)], 8.0)
        assert res.migrations() == 0

    def test_rm_policy_supported(self):
        ts = TaskSet([Task("a", 1, 4), Task("b", 1, 6)])
        res = simulate_global(ts, "RM", 2, [(0, 24)], 24.0)
        assert not res.misses

    def test_bad_m_rejected(self):
        ts = TaskSet([Task("a", 1, 4)])
        with pytest.raises(ValueError):
            simulate_global(ts, "EDF", 0, [(0, 8)], 8.0)

    def test_gfb_accepted_sets_simulate_cleanly(self, rng):
        from repro.generators import generate_taskset
        from repro.globalsched import global_edf_gfb_test

        for _ in range(10):
            n = int(rng.integers(3, 7))
            u = float(rng.uniform(0.5, 2.0))
            ts = generate_taskset(
                n, u, rng, period_low=4, period_high=24, period_granularity=1.0
            )
            if not global_edf_gfb_test(ts, 4):
                continue
            assert validate_global_by_simulation(ts, 4)


class TestCompare:
    def test_fragmentation_favours_global(self):
        # Six tasks of U = 0.6 on 4 procs: partitioned packs 2+2+1+1 ✓...
        # make it 0.7: per-bin cap 1.0 fits one task per bin only -> 4 of 6
        # placed; partitioned fails, global GFB: U=4.2 > bound -> also fails.
        # Classic disagreement case instead: utilization 0.51 x 7 tasks.
        tasks = TaskSet([Task(f"t{i}", 5.1, 10) for i in range(7)])
        cmp = compare_nf_strategies(tasks, 4, admission="utilization")
        assert not cmp.partitioned_ok  # 7 tasks of .51 don't pack into 4 bins
        # GFB: U = 3.57 vs bound 4*(1-.51)+.51 = 2.47 -> also rejected
        assert not cmp.global_ok

    def test_partitioned_wins_on_dhall_sets(self):
        # Dhall: m-1 heavy + light tasks kill global bounds; partitioning
        # places one heavy task per processor easily.
        tasks = TaskSet(
            [Task(f"h{i}", 9, 10) for i in range(3)] + [Task("l", 1, 10)]
        )
        cmp = compare_nf_strategies(tasks, 4, admission="utilization")
        assert cmp.partitioned_ok
        assert not cmp.global_ok
        assert cmp.disagreement

    def test_global_wins_on_fragmentation(self):
        # 5 tasks of U=0.44 on 2 procs: bins hold 2 each (0.88) -> 5th fails;
        # GFB: U = 2.2 vs 2*(1-0.44)+0.44 = 1.56 -> fails too. Make lighter:
        # 5 x 0.35 on 2 procs with cap 0.7 hmm. Use utilization cap via EDF
        # admission: bins hold U<=1: 2+2 tasks = 0.88 leaves 0.12: 5th (0.44)
        # fails partitioned. GFB bound = 2*(0.56)+0.44=1.56 < 1.76 fails.
        # True fragmentation win needs low u_max: 3 procs, 4 tasks of 0.74:
        # partitioned: one per proc, 4th fails; GFB: U=2.96 > 3*0.26+0.74 ->
        # fails. GFB can't beat packing on identical tasks (known), so use
        # mixed: one 0.9 + six 0.35 on 4 procs.
        tasks = TaskSet(
            [Task("big", 9, 10)] + [Task(f"s{i}", 3.5, 10) for i in range(6)]
        )
        cmp = compare_nf_strategies(tasks, 4, admission="utilization")
        # partitioned: big(.9)+... bins: [.9], [.35x2=.7], [.7], [.7] -> ok!
        assert cmp.partitioned_ok  # documents that packing handles this case

    def test_result_fields(self):
        tasks = TaskSet([Task("a", 1, 10)])
        cmp = compare_nf_strategies(tasks, 4)
        assert cmp.partitioned_ok and cmp.global_ok
        assert not cmp.disagreement
