"""Fault-campaign tests: per-mode guarantees of Section 2.2."""

import pytest

from repro.faults import Fault, FaultCampaign, FaultOutcome, run_campaign
from repro.model import Mode


@pytest.fixture(scope="module")
def campaign_result(paper_part, paper_config_b):
    camp = FaultCampaign(paper_part, paper_config_b, rate=0.08)
    return camp.run(horizon=paper_config_b.period * 60, seed=11)


class TestCampaign:
    def test_every_fault_classified(self, campaign_result):
        assert campaign_result.injected == len(campaign_result.records)
        assert sum(campaign_result.outcomes.values()) == campaign_result.injected

    def test_ft_faults_always_masked(self, campaign_result):
        by_mode = campaign_result.outcomes_by_mode
        if Mode.FT in by_mode:
            ft = by_mode[Mode.FT]
            assert ft[FaultOutcome.SILENCED] == 0
            assert ft[FaultOutcome.CORRUPTED] == 0

    def test_fs_faults_never_corrupt(self, campaign_result):
        by_mode = campaign_result.outcomes_by_mode
        if Mode.FS in by_mode:
            assert by_mode[Mode.FS][FaultOutcome.CORRUPTED] == 0
            assert by_mode[Mode.FS][FaultOutcome.MASKED] == 0

    def test_nf_faults_never_silence(self, campaign_result):
        by_mode = campaign_result.outcomes_by_mode
        if Mode.NF in by_mode:
            assert by_mode[Mode.NF][FaultOutcome.SILENCED] == 0

    def test_ft_tasks_never_miss(self, campaign_result):
        assert campaign_result.ft_misses == 0

    def test_corrupted_jobs_listed(self, campaign_result):
        assert len(campaign_result.corrupted_jobs) == campaign_result.outcomes[
            FaultOutcome.CORRUPTED
        ]

    def test_summary_renders(self, campaign_result):
        s = campaign_result.summary()
        assert "faults injected" in s and "masked" in s

    def test_rates_sum_to_one(self, campaign_result):
        if campaign_result.injected:
            total = sum(
                campaign_result.rate(o) for o in FaultOutcome
            )
            assert total == pytest.approx(1.0)


class TestEmptyCampaign:
    def test_rate_is_none_not_perfect(self, paper_part, paper_config_b):
        """An empty campaign has no outcome rates: a silent 0.0 would make
        it read as a perfect (fault-free) run."""
        camp = FaultCampaign(paper_part, paper_config_b)
        res = camp.run(horizon=paper_config_b.period * 2, faults=[])
        assert res.injected == 0
        assert all(res.rate(o) is None for o in FaultOutcome)

    def test_summary_renders_na(self, paper_part, paper_config_b):
        camp = FaultCampaign(paper_part, paper_config_b)
        res = camp.run(horizon=paper_config_b.period * 2, faults=[])
        s = res.summary()
        assert "n/a" in s and "%" not in s


class TestExplicitFaults:
    def test_explicit_fault_list(self, paper_part, paper_config_b):
        camp = FaultCampaign(paper_part, paper_config_b)
        res = camp.run(
            horizon=paper_config_b.period * 5,
            faults=[Fault(0.1, 0), Fault(2.0, 1)],
        )
        assert res.injected == 2

    def test_one_shot_fault_iterable_counted(self, paper_part, paper_config_b):
        """A generator of faults must not read back as injected=0: the sim
        drains the iterable, so the campaign has to materialize it once."""
        camp = FaultCampaign(paper_part, paper_config_b)
        res = camp.run(
            horizon=paper_config_b.period * 5,
            faults=iter([Fault(0.1, 0), Fault(2.0, 1)]),
        )
        assert res.injected == 2
        assert res.injected == len(res.records)

    def test_run_campaign_facade(self, paper_part, paper_config_b):
        res = run_campaign(
            paper_part, paper_config_b,
            rate=0.05, horizon=paper_config_b.period * 20, seed=3,
        )
        assert res.injected >= 0
        assert res.simulation.horizon == pytest.approx(
            paper_config_b.period * 20
        )
