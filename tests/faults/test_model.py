"""Unit tests for the fault model and generators."""

import numpy as np
import pytest

from repro.faults import Fault, FaultOutcome, PoissonFaultGenerator, deterministic_faults


class TestFault:
    def test_valid(self):
        f = Fault(1.5, 2)
        assert f.time == 1.5 and f.core == 2

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Fault(-0.1, 0)

    def test_bad_core_rejected(self):
        with pytest.raises(ValueError):
            Fault(1.0, 4)

    def test_core_validated_against_platform_size(self):
        # core 4 exists on an 8-core platform, not on the default 4-core one
        assert Fault(1.0, 4, core_count=8).core == 4
        with pytest.raises(ValueError):
            Fault(1.0, 1, core_count=1)
        with pytest.raises(ValueError):
            Fault(1.0, 0, core_count=0)
        with pytest.raises(ValueError):
            Fault(1.0, 0, core_count=True)

    def test_equality_ignores_core_count(self):
        assert Fault(1.0, 2) == Fault(1.0, 2, core_count=8)

    def test_deterministic_builder(self):
        faults = deterministic_faults([(1.0, 0), (2.0, 3)])
        assert [f.time for f in faults] == [1.0, 2.0]
        assert [f.core for f in faults] == [0, 3]

    def test_deterministic_builder_with_core_count(self):
        faults = deterministic_faults([(1.0, 6)], core_count=8)
        assert faults[0].core == 6


class TestPoissonGenerator:
    def test_all_within_horizon(self, rng):
        gen = PoissonFaultGenerator(rate=0.5)
        faults = gen.generate(100.0, rng)
        assert all(0 <= f.time < 100.0 for f in faults)

    def test_rate_approximately_respected(self):
        gen = PoissonFaultGenerator(rate=0.2)
        rng = np.random.default_rng(7)
        counts = [len(gen.generate(500.0, rng)) for _ in range(20)]
        assert 0.15 < np.mean(counts) / 500.0 < 0.25

    def test_min_separation_enforced(self, rng):
        gen = PoissonFaultGenerator(rate=10.0, min_separation=1.0)
        faults = gen.generate(50.0, rng)
        times = [f.time for f in faults]
        assert all(b - a >= 1.0 - 1e-9 for a, b in zip(times, times[1:]))

    def test_cores_uniform(self):
        gen = PoissonFaultGenerator(rate=5.0)
        rng = np.random.default_rng(3)
        faults = gen.generate(400.0, rng)
        counts = np.bincount([f.core for f in faults], minlength=4)
        assert counts.min() > 0.15 * counts.sum()

    def test_core_count_scales_strike_targets(self):
        gen = PoissonFaultGenerator(rate=5.0, core_count=8)
        faults = gen.generate(400.0, np.random.default_rng(3))
        cores = {f.core for f in faults}
        assert cores - set(range(4))  # the old hardcoded 0..3 never hit these
        assert all(0 <= c < 8 for c in cores)

    def test_deterministic_given_seed(self):
        gen = PoissonFaultGenerator(rate=0.5)
        a = gen.generate(50.0, np.random.default_rng(1))
        b = gen.generate(50.0, np.random.default_rng(1))
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonFaultGenerator(rate=0.0)
        with pytest.raises(ValueError):
            PoissonFaultGenerator(rate=1.0, min_separation=-1.0)
        with pytest.raises(ValueError):
            PoissonFaultGenerator(rate=1.0, core_count=0)
        with pytest.raises(ValueError):
            PoissonFaultGenerator(rate=1.0).generate(0.0, np.random.default_rng(0))


class TestOutcomeEnum:
    def test_values(self):
        assert str(FaultOutcome.MASKED) == "masked"
        assert len(FaultOutcome) == 4
