"""End-to-end integration tests: the full pipeline on fresh workloads.

generate → partition → design → validate-by-simulation → inject faults.
"""

import numpy as np
import pytest

from repro.core import DesignError, Overheads, design_platform
from repro.faults import FaultCampaign, FaultOutcome
from repro.generators import generate_mixed_taskset
from repro.model import Mode
from repro.partition import PartitionError, partition_by_modes
from repro.sim import MulticoreSim, validate_design


def _pipeline(seed: int, n: int = 10, u: float = 1.2):
    rng = np.random.default_rng(seed)
    ts = generate_mixed_taskset(
        n, u, rng, period_low=10, period_high=60, period_granularity=5.0
    )
    part = partition_by_modes(ts, admission="utilization")
    config = design_platform(part, "EDF", Overheads.uniform(0.02))
    return ts, part, config


class TestGeneratedPipelines:
    @pytest.mark.parametrize("seed", [0, 2, 3, 4, 5])
    def test_design_then_simulate_clean(self, seed):
        try:
            ts, part, config = _pipeline(seed)
        except (DesignError, PartitionError):
            pytest.skip("random workload infeasible — not the property under test")
        sim = MulticoreSim(part, config)
        horizon = min(sim.default_horizon(), config.period * 120)
        result = sim.run(horizon)
        assert result.miss_count == 0, result.misses_by_task()

    @pytest.mark.parametrize("seed", [0, 2])
    def test_full_validation_report(self, seed):
        try:
            ts, part, config = _pipeline(seed)
        except (DesignError, PartitionError):
            pytest.skip("random workload infeasible")
        report = validate_design(
            part, config, horizon=config.period * 80
        )
        assert report.ok, report.notes

    @pytest.mark.parametrize("seed", [0, 2])
    def test_fault_campaign_on_generated_design(self, seed):
        try:
            ts, part, config = _pipeline(seed)
        except (DesignError, PartitionError):
            pytest.skip("random workload infeasible")
        camp = FaultCampaign(part, config, rate=0.05)
        res = camp.run(horizon=config.period * 60, seed=seed)
        # FT tasks keep their guarantee under faults.
        assert res.ft_misses == 0
        # FS slots never produce corrupted outputs.
        fs = res.outcomes_by_mode.get(Mode.FS)
        if fs:
            assert fs[FaultOutcome.CORRUPTED] == 0

    def test_max_slack_design_admits_extra_load(self):
        ts, part, config = _pipeline(0)
        from repro.core import AdmissionController, MaxSlackGoal

        slack_cfg = design_platform(
            part, "EDF", Overheads.uniform(0.02), MaxSlackGoal()
        )
        ctl = AdmissionController(slack_cfg, part)
        from repro.model import Task

        d = ctl.try_admit(Task("late_arrival", 0.05, 20.0, mode=Mode.NF))
        assert d.admitted

    def test_infeasible_overload_rejected_cleanly(self):
        rng = np.random.default_rng(99)
        ts = generate_mixed_taskset(
            8, 3.9, rng, period_low=10, period_high=40,
            mode_shares={Mode.NF: 1.0},
        )
        # NF alone nearly saturates 4 processors; adding mandatory FT load
        # cannot fit — the pipeline must fail loudly, not mis-design.
        from repro.model import Task, TaskSet, merge_tasksets

        ft = TaskSet([Task("critical", 5, 10, mode=Mode.FT)])
        full = merge_tasksets([ts, ft])
        with pytest.raises((DesignError, PartitionError)):
            part = partition_by_modes(full, admission="utilization")
            design_platform(part, "EDF", Overheads.uniform(0.02))


class TestPaperEndToEnd:
    def test_both_table2_designs_survive_long_simulation(
        self, paper_part, paper_config_b, paper_config_c
    ):
        for config in (paper_config_b, paper_config_c):
            sim = MulticoreSim(paper_part, config)
            res = sim.run(horizon=config.period * 100)
            assert res.miss_count == 0

    def test_rm_design_survives_simulation(self, paper_part, paper_region_rm):
        config = design_platform(
            paper_part, "RM", Overheads.uniform(0.05), region=paper_region_rm
        )
        sim = MulticoreSim(paper_part, config)
        res = sim.run(horizon=config.period * 60)
        assert res.miss_count == 0
