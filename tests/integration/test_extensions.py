"""Cross-cutting integration tests for the extension systems."""

import pytest

from repro.core import Overheads, design_split_platform
from repro.model import Mode, Task, taskset_from_json, taskset_to_json, TaskSet
from repro.platform import ModeSwitchController, SegmentKind
from repro.sim import MulticoreSim
from repro.supply import MeasuredSupply


class TestJitterSerialization:
    def test_jitter_roundtrips_through_json(self):
        ts = TaskSet([Task("a", 1, 10, jitter=0.5), Task("b", 1, 12)])
        back = taskset_from_json(taskset_to_json(ts))
        assert back["a"].jitter == 0.5
        assert back["b"].jitter == 0.0

    def test_jitter_absent_from_json_when_zero(self):
        ts = TaskSet([Task("a", 1, 10)])
        assert "jitter" not in taskset_to_json(ts)


class TestSplitScheduleIntegration:
    @pytest.fixture(scope="class")
    def split_design(self, paper_part):
        return design_split_platform(
            paper_part, "EDF", Overheads.uniform(0.05), {Mode.FS: 2}
        )

    def test_switcher_expands_split_template(self, split_design):
        ctrl = ModeSwitchController(split_design.schedule)
        segs = [
            s for s in ctrl.segments(split_design.period)
            if s.kind is SegmentKind.USABLE and s.mode is Mode.FS
        ]
        assert len(segs) == 2  # two FS windows per cycle

    def test_measured_split_supply_dominates_analytic(self, split_design, paper_part):
        sim = MulticoreSim(paper_part, split_design.schedule, "EDF")
        horizon = split_design.period * 20
        result = sim.run(horizon)
        windows = result.availability_windows(Mode.FS)
        measured = MeasuredSupply(windows, horizon)
        analytic = split_design.schedule.supply(Mode.FS)
        import numpy as np

        for t in np.linspace(0, horizon / 2, 120):
            assert measured.supply(float(t)) >= analytic.supply(float(t)) - 1e-7

    def test_split_fault_classification_uses_correct_windows(
        self, split_design, paper_part
    ):
        from repro.faults import Fault, FaultOutcome

        # A fault inside the SECOND FS window of a cycle must classify FS.
        ctrl = ModeSwitchController(split_design.schedule)
        fs_windows = [
            s for s in ctrl.segments(split_design.period)
            if s.kind is SegmentKind.USABLE and s.mode is Mode.FS
        ]
        t = (fs_windows[1].start + fs_windows[1].end) / 2
        sim = MulticoreSim(paper_part, split_design.schedule, "EDF")
        res = sim.run(horizon=split_design.period * 10, faults=[Fault(t, 0)])
        assert res.fault_records[0].outcome is FaultOutcome.SILENCED
        assert res.fault_records[0].mode is Mode.FS


class TestSensitivityOnEvolvedDesigns:
    def test_margins_grow_after_task_removal(self, paper_part, paper_config_c):
        from repro.core import AdmissionController
        from repro.core.sensitivity import quantum_margin

        ctl = AdmissionController(paper_config_c, paper_part)
        ctl.remove("tau9")  # the only task of FS[1]
        part = ctl.partition()
        cfg = ctl.config()
        margins = quantum_margin(part, cfg)
        # removing tau9 leaves FS sized by FS[0] alone: still tight or
        # positive, never negative.
        assert margins[Mode.FS] >= -1e-9

    def test_critical_scaling_after_admission(self, paper_part, paper_config_c):
        from repro.core import AdmissionController
        from repro.core.sensitivity import critical_scaling_factor

        ctl = AdmissionController(paper_config_c, paper_part)
        d = ctl.try_admit(Task("extra", 0.1, 10.0, mode=Mode.NF))
        assert d.admitted
        part = ctl.partition()
        cfg = ctl.config()
        mode, idx = part.processor_of("extra")
        factor = critical_scaling_factor(
            part.bin(mode, idx), cfg.algorithm, cfg.period,
            cfg.schedule.usable(mode),
        )
        assert factor >= 1.0 - 5e-3  # the admitted state is feasible
