"""Unit tests for per-mode partitioning."""

import pytest

from repro.model import Mode, Task, TaskSet
from repro.partition import PartitionError, partition_by_modes


class TestPartitionByModes:
    def test_paper_taskset_partitions(self, paper_ts):
        part = partition_by_modes(paper_ts)
        assert set(part.all_tasks().names) == set(paper_ts.names)

    def test_bin_counts_match_parallelism(self, paper_ts):
        part = partition_by_modes(paper_ts)
        assert len(part.bins(Mode.NF)) == 4
        assert len(part.bins(Mode.FS)) == 2
        assert len(part.bins(Mode.FT)) == 1

    def test_modes_respected(self, paper_ts):
        part = partition_by_modes(paper_ts)
        for mode in Mode:
            for ts in part.bins(mode):
                assert all(t.mode is mode for t in ts)

    def test_empty_mode_gets_empty_bins(self):
        ts = TaskSet([Task("a", 1, 10, mode=Mode.NF)])
        part = partition_by_modes(ts)
        assert all(len(b) == 0 for b in part.bins(Mode.FT))

    def test_ft_overload_reported_with_mode(self):
        ts = TaskSet(
            [
                Task("f1", 6, 10, mode=Mode.FT),
                Task("f2", 6, 10, mode=Mode.FT),
            ]
        )
        with pytest.raises(PartitionError, match="FT"):
            partition_by_modes(ts)

    def test_heuristic_forwarded(self, paper_ts):
        wf = partition_by_modes(paper_ts, heuristic="worst-fit")
        ff = partition_by_modes(paper_ts, heuristic="first-fit")
        # Different heuristics may or may not coincide, but both are valid.
        assert set(wf.all_tasks().names) == set(ff.all_tasks().names)

    def test_feasible_for_design(self, paper_ts):
        # The automatic partition must feed the design pipeline end-to-end.
        from repro.core import Overheads, design_platform

        part = partition_by_modes(paper_ts)
        cfg = design_platform(part, "EDF", Overheads.uniform(0.05))
        assert cfg.period > 0
