"""Unit tests for bin-packing partitioners."""

import pytest

from repro.model import Task, TaskSet
from repro.partition import (
    PartitionError,
    best_fit,
    first_fit,
    next_fit,
    partition_tasks,
    worst_fit,
)
from repro.partition.binpack import make_admission_test


def names(bins):
    return [tuple(b.names) for b in bins]


@pytest.fixture
def six_tasks():
    return TaskSet(
        [
            Task("a", 4, 10),  # U = .4
            Task("b", 3, 10),  # U = .3
            Task("c", 3, 10),  # U = .3
            Task("d", 2, 10),  # U = .2
            Task("e", 2, 10),  # U = .2
            Task("f", 1, 10),  # U = .1
        ]
    )


class TestHeuristicPlacement:
    def test_first_fit_greedy(self, six_tasks):
        bins = first_fit(six_tasks, 2)
        # a,b,c fill bin0 to 1.0; d,e,f go to bin1.
        assert names(bins) == [("a", "b", "c"), ("d", "e", "f")]

    def test_worst_fit_balances(self, six_tasks):
        bins = worst_fit(six_tasks, 2)
        utils = [b.utilization for b in bins]
        assert max(utils) - min(utils) <= 0.2

    def test_best_fit_tightest(self):
        ts = TaskSet([Task("a", 6, 10), Task("b", 3, 10), Task("c", 3, 10)])
        bins = best_fit(ts, 2)
        # a -> bin0 (.6); b -> prefers fuller bin0 (.9); c only fits bin1.
        assert names(bins) == [("a", "b"), ("c",)]

    def test_next_fit_never_looks_back(self):
        ts = TaskSet([Task("a", 6, 10), Task("b", 5, 10), Task("c", 4, 10)])
        bins = next_fit(ts, 3)
        # a(0.6) bin0; b(0.5) doesn't fit bin0 -> bin1; c(0.4) fits bin1.
        assert names(bins) == [("a",), ("b", "c"), ()]

    def test_decreasing_sorts_by_utilization(self, six_tasks):
        bins = first_fit(six_tasks, 2, decreasing=True)
        placed_first = bins[0].names[0]
        assert placed_first == "a"  # highest utilization first

    def test_overflow_raises(self):
        ts = TaskSet([Task("a", 9, 10), Task("b", 9, 10), Task("c", 9, 10)])
        with pytest.raises(PartitionError):
            first_fit(ts, 2)

    def test_next_fit_fails_where_first_fit_succeeds(self):
        ts = TaskSet(
            [Task("a", 6, 10), Task("b", 5, 10), Task("c", 4, 10), Task("d", 5, 10)]
        )
        # first-fit: a(.6)->0, b(.5)->1, c(.4)->0, d(.5)->1 : fits in 2 bins
        assert len(first_fit(ts, 2)) == 2
        with pytest.raises(PartitionError):
            next_fit(ts, 2)

    def test_bad_bin_count(self, six_tasks):
        with pytest.raises(ValueError):
            first_fit(six_tasks, 0)


class TestAdmissionTests:
    def test_utilization_cap(self):
        adm = make_admission_test("utilization", cap=0.5)
        assert adm(TaskSet([Task("a", 1, 2)]))
        assert not adm(TaskSet([Task("a", 1, 2), Task("b", 1, 10)]))

    def test_edf_admission_sees_constrained_deadlines(self):
        adm = make_admission_test("edf")
        good = TaskSet([Task("a", 1, 10, deadline=2)])
        bad = TaskSet(
            [Task("a", 1, 10, deadline=2), Task("b", 2, 10, deadline=2)]
        )
        assert adm(good)
        assert not adm(bad)

    def test_rm_admission_stricter_than_edf(self):
        # U=1 non-harmonic pair: EDF yes, RM no.
        pair = TaskSet([Task("a", 1, 2), Task("b", 2.5, 5)])
        assert make_admission_test("edf")(pair)
        assert not make_admission_test("rm")(pair)

    def test_unknown_admission_rejected(self):
        with pytest.raises(ValueError):
            make_admission_test("magic")

    def test_partition_with_rm_admission(self, six_tasks):
        bins = partition_tasks(six_tasks, 3, admission="rm")
        assert sum(len(b) for b in bins) == 6


class TestPartitionTasksFacade:
    def test_default_is_worst_fit_decreasing(self, six_tasks):
        default = partition_tasks(six_tasks, 2)
        explicit = worst_fit(six_tasks, 2, decreasing=True)
        assert names(default) == names(explicit)

    def test_unknown_heuristic_rejected(self, six_tasks):
        with pytest.raises(ValueError, match="unknown heuristic"):
            partition_tasks(six_tasks, 2, heuristic="magic-fit")

    def test_all_tasks_placed_exactly_once(self, six_tasks):
        bins = partition_tasks(six_tasks, 3)
        placed = [n for b in bins for n in b.names]
        assert sorted(placed) == sorted(six_tasks.names)

    def test_wfd_minimises_max_bin_on_paper_nf(self, paper_ts):
        from repro.model import Mode

        nf = paper_ts.by_mode(Mode.NF)
        bins = partition_tasks(nf, 4, heuristic="worst-fit", decreasing=True)
        # paper's manual partition has max bin utilization 0.25; WFD must
        # not do worse than single-task-per-bin layouts allow
        assert max(b.utilization for b in bins) <= 0.30
