"""Property-based tests for the minQ inversion (Eqs. 6 and 11)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import edf_schedulable_supply, fp_schedulable_supply
from repro.core import min_quantum_edf, min_quantum_fp
from repro.model import Task, TaskSet
from repro.supply import LinearSupply


@st.composite
def small_tasksets(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    for i in range(n):
        period = draw(st.integers(min_value=4, max_value=40))
        wcet = draw(
            st.floats(min_value=0.1, max_value=period / 2, allow_nan=False)
        )
        tasks.append(Task(f"t{i}", wcet, float(period)))
    return TaskSet(tasks)


periods = st.floats(min_value=0.3, max_value=5.0, allow_nan=False)


@given(small_tasksets(), periods)
@settings(max_examples=60, deadline=None)
def test_minq_edf_is_exact_feasibility_boundary(ts, p):
    q = min_quantum_edf(ts, p)
    assert q > 0
    if q < p:
        above = LinearSupply.from_slot(p, min(q * (1 + 1e-9) + 1e-9, p))
        assert edf_schedulable_supply(ts, above).schedulable
    if q <= p:
        below = LinearSupply.from_slot(p, max(q - max(1e-3, q * 1e-3), 0.0))
        assert not edf_schedulable_supply(ts, below).schedulable


@given(small_tasksets(), periods)
@settings(max_examples=60, deadline=None)
def test_minq_fp_is_exact_feasibility_boundary(ts, p):
    q = min_quantum_fp(ts, p, "RM")
    if q < p:
        above = LinearSupply.from_slot(p, min(q * (1 + 1e-9) + 1e-9, p))
        assert fp_schedulable_supply(ts, above, "RM").schedulable
    if q <= p:
        below = LinearSupply.from_slot(p, max(q - max(1e-3, q * 1e-3), 0.0))
        assert not fp_schedulable_supply(ts, below, "RM").schedulable


@given(small_tasksets(), periods)
@settings(max_examples=60, deadline=None)
def test_edf_needs_no_more_than_fp(ts, p):
    # EDF optimality: any quantum sufficient under RM is sufficient under
    # EDF (cf. Figure 4), so minQ_EDF <= minQ_RM — *whenever the RM value is
    # meaningful* (a quantum cannot exceed the period; for values beyond P
    # both formulas merely certify infeasibility and are not ordered).
    q_rm = min_quantum_fp(ts, p, "RM")
    if q_rm <= p:
        assert min_quantum_edf(ts, p) <= q_rm + 1e-9


@given(small_tasksets(), periods, periods)
@settings(max_examples=60, deadline=None)
def test_minq_monotone_in_period(ts, p1, p2):
    # A longer major cycle starves longer, so the quantum can only grow.
    # Provable from d f_P(t, W)/dP >= 0, which needs W(t) <= t at the demand
    # points — guaranteed for U <= 1 with implicit deadlines; overloaded
    # sets (never feasible anyway) are excluded.
    if ts.utilization > 1.0:
        return
    lo, hi = min(p1, p2), max(p1, p2)
    assert min_quantum_edf(ts, lo) <= min_quantum_edf(ts, hi) + 1e-9


@given(small_tasksets(), periods)
@settings(max_examples=60, deadline=None)
def test_minq_at_least_bandwidth(ts, p):
    # For any set that could ever be schedulable (U <= 1), the slot must at
    # least carry the task set's bandwidth: Q >= U * P. (Provable from the
    # hyperperiod point of Eq. 11; for U > 1 the truncated dlSet makes the
    # formula meaningless, as no quantum is ever sufficient.)
    if ts.utilization > 1.0:
        return
    assert min_quantum_edf(ts, p) >= ts.utilization * p - 1e-9
