"""Property-based tests for the uniprocessor simulator.

The simulator is cross-validated against the analysis: whenever the exact
dedicated-processor tests accept a set, its synchronous simulation must meet
every deadline; and conservation laws (executed time == completed work) must
hold for arbitrary windows.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import edf_schedulable_dedicated, fp_schedulable_dedicated
from repro.model import JobState, Task, TaskSet
from repro.sim import make_policy, simulate_uniproc


@st.composite
def integer_tasksets(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    tasks = []
    for i in range(n):
        period = draw(st.integers(min_value=3, max_value=16))
        wcet = draw(st.integers(min_value=1, max_value=max(period // 2, 1)))
        tasks.append(Task(f"t{i}", float(wcet), float(period)))
    return TaskSet(tasks)


def _horizon(ts):
    return min(ts.hyperperiod() * 2, 400.0)


@given(integer_tasksets())
@settings(max_examples=50, deadline=None)
def test_edf_accepted_sets_simulate_cleanly(ts):
    if not edf_schedulable_dedicated(ts).schedulable:
        return
    h = _horizon(ts)
    res = simulate_uniproc(ts, make_policy(ts, "EDF"), [(0.0, h)], h)
    assert not res.misses


@given(integer_tasksets())
@settings(max_examples=50, deadline=None)
def test_rm_accepted_sets_simulate_cleanly(ts):
    if not fp_schedulable_dedicated(ts, "RM").schedulable:
        return
    h = _horizon(ts)
    res = simulate_uniproc(ts, make_policy(ts, "RM"), [(0.0, h)], h)
    assert not res.misses


@given(integer_tasksets())
@settings(max_examples=50, deadline=None)
def test_executed_time_equals_completed_work(ts):
    h = _horizon(ts)
    res = simulate_uniproc(ts, make_policy(ts, "EDF"), [(0.0, h)], h)
    executed = res.trace.busy_time()
    work = sum(
        j.task.wcet - j.remaining for j in res.jobs
    )
    assert abs(executed - work) < 1e-6


@given(integer_tasksets(), st.integers(min_value=1, max_value=5))
@settings(max_examples=50, deadline=None)
def test_windowed_execution_stays_inside_windows(ts, k):
    h = min(float(ts.hyperperiod()), 100.0) * 2
    stride = h / (2 * k)
    windows = [(2 * i * stride, (2 * i + 1) * stride) for i in range(k)]
    res = simulate_uniproc(ts, make_policy(ts, "EDF"), windows, h)
    for s in res.trace.slices:
        assert any(
            a - 1e-9 <= s.start and s.end <= b + 1e-9 for a, b in windows
        )


@given(integer_tasksets())
@settings(max_examples=50, deadline=None)
def test_jobs_never_execute_before_release_or_after_completion(ts):
    h = _horizon(ts)
    res = simulate_uniproc(ts, make_policy(ts, "RM"), [(0.0, h)], h)
    by_name = {j.name: j for j in res.jobs}
    for s in res.trace.slices:
        j = by_name[s.job]
        assert s.start >= j.release - 1e-9
        if j.completion_time is not None:
            assert s.end <= j.completion_time + 1e-9
