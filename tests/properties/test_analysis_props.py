"""Property-based tests for the schedulability analyses.

Cross-validates independent implementations: point tests vs response-time
analysis for FP; QPA vs the full processor-demand criterion for EDF; and
basic demand-function laws.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    demand_bound_function,
    edf_schedulable_dedicated,
    fp_response_time,
    fp_schedulable_dedicated,
    qpa_schedulable,
    rate_monotonic,
)
from repro.model import Task, TaskSet


@st.composite
def integer_tasksets(draw):
    """Small integer-parameter task sets (exact float arithmetic)."""
    n = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    for i in range(n):
        period = draw(st.integers(min_value=3, max_value=24))
        wcet = draw(st.integers(min_value=1, max_value=max(period // 2, 1)))
        deadline = draw(st.integers(min_value=wcet, max_value=period))
        tasks.append(Task(f"t{i}", float(wcet), float(period), float(deadline)))
    return TaskSet(tasks)


@given(integer_tasksets())
@settings(max_examples=100, deadline=None)
def test_fp_point_test_agrees_with_rta(ts):
    order = rate_monotonic(ts)
    point = fp_schedulable_dedicated(ts, "RM")
    rta_ok = all(
        fp_response_time(t, order[:i]) is not None
        for i, t in enumerate(order)
    )
    assert point.schedulable == rta_ok


@given(integer_tasksets())
@settings(max_examples=100, deadline=None)
def test_qpa_agrees_with_processor_demand(ts):
    assert qpa_schedulable(ts) == edf_schedulable_dedicated(ts).schedulable


@given(integer_tasksets())
@settings(max_examples=100, deadline=None)
def test_rm_schedulable_implies_edf_schedulable(ts):
    # EDF optimality on a dedicated uniprocessor.
    if fp_schedulable_dedicated(ts, "RM").schedulable:
        assert edf_schedulable_dedicated(ts).schedulable


@given(integer_tasksets(), st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_dbf_monotone_and_bounded(ts, t):
    d1 = demand_bound_function(ts, t)
    d2 = demand_bound_function(ts, t + 1.0)
    assert d1 <= d2 + 1e-9
    # dbf never exceeds the total work releasable in [0, t]:
    ceiling = sum((t / task.period + 1) * task.wcet for task in ts)
    assert d1 <= ceiling + 1e-9


@given(integer_tasksets())
@settings(max_examples=100, deadline=None)
def test_dbf_zero_before_first_deadline(ts):
    d_min = min(t.deadline for t in ts)
    assert demand_bound_function(ts, d_min * 0.999) == 0.0
