"""Property tests for the fast-kernel exactness gate.

For every campaign preset's generator shape (weighted, faultspace, table2,
figure4) the integer fast path must return results *identical* to the float
path — verdicts and minQ values alike. These run the same analysis twice
under :class:`repro.analysis.kernels.kernels_forced` and compare exactly
(no tolerance: the goldens are byte-compared, so so are we).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    deadline_set,
    fp_schedulable_dedicated,
    kernels,
    qpa_schedulable,
    edf_schedulable_dedicated,
)
from repro.core import min_quantum
from repro.experiments.paper import paper_partition, paper_taskset
from repro.generators import generate_mixed_taskset
from repro.model import Mode


def _paper_bins():
    part = paper_partition()
    return [ts for mode in Mode for ts in part.bins(mode)]


def _preset_taskset(preset: str, seed: int, n: int, u_total: float):
    """A task set the way the preset's campaign points generate them."""
    if preset in ("weighted", "faultspace"):
        # the schedulability/fault-injection experiments both build their
        # sets through _generate: mixed modes, hyperperiod-limited periods
        return generate_mixed_taskset(
            n,
            u_total,
            np.random.default_rng(seed),
            period_method="hyperperiod-limited",
            period_hyperperiod=3600.0,
        )
    # table2/figure4 analyse the paper's fixed 13-task design
    return paper_taskset()


def _assert_fast_matches_exact(ts, period: float, algorithm: str) -> None:
    with kernels.kernels_forced(True):
        fast_qpa = qpa_schedulable(ts)
        fast_edf = edf_schedulable_dedicated(ts)
        fast_fp = fp_schedulable_dedicated(ts, "DM").schedulable
        fast_dl = deadline_set(ts, 3600.0)
        fast_q = min_quantum(ts, algorithm, period)
    with kernels.kernels_forced(False):
        assert qpa_schedulable(ts) is fast_qpa
        exact_edf = edf_schedulable_dedicated(ts)
        assert exact_edf.schedulable == fast_edf.schedulable
        assert exact_edf.points_checked == fast_edf.points_checked
        assert fp_schedulable_dedicated(ts, "DM").schedulable == fast_fp
        assert deadline_set(ts, 3600.0) == fast_dl
        assert min_quantum(ts, algorithm, period) == fast_q


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=8),
    u_total=st.floats(min_value=0.3, max_value=1.4),
    period=st.floats(min_value=0.5, max_value=200.0),
    algorithm=st.sampled_from(["EDF", "RM", "DM"]),
)
@settings(max_examples=40, deadline=None)
def test_weighted_preset_fast_equals_exact(seed, n, u_total, period, algorithm):
    ts = _preset_taskset("weighted", seed, n, u_total)
    _assert_fast_matches_exact(ts, period, algorithm)


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=6),
    u_total=st.floats(min_value=0.5, max_value=2.0),
    period=st.floats(min_value=0.5, max_value=200.0),
    algorithm=st.sampled_from(["EDF", "RM"]),
)
@settings(max_examples=40, deadline=None)
def test_faultspace_preset_fast_equals_exact(seed, n, u_total, period, algorithm):
    # the dependability sweep pushes u_total well past 1: overloaded sets
    # must agree on their (negative) verdicts too
    ts = _preset_taskset("faultspace", seed, n, u_total)
    _assert_fast_matches_exact(ts, period, algorithm)


@given(
    period=st.floats(min_value=0.5, max_value=500.0),
    algorithm=st.sampled_from(["EDF", "RM", "DM"]),
)
@settings(max_examples=40, deadline=None)
def test_table2_paper_bins_fast_equals_exact(period, algorithm):
    # Table 2 computes minQ per partition bin of the paper's design
    for ts in _paper_bins():
        with kernels.kernels_forced(True):
            fast = min_quantum(ts, algorithm, period)
        with kernels.kernels_forced(False):
            assert min_quantum(ts, algorithm, period) == fast


@given(period=st.floats(min_value=0.5, max_value=500.0))
@settings(max_examples=40, deadline=None)
def test_figure4_paper_taskset_fast_equals_exact(period):
    # Figure 4 sweeps minQ(P) over the paper task set's partition bins
    _assert_fast_matches_exact(_paper_bins()[0], period, "EDF")
