"""Property-based tests for supply-function invariants.

Every supply function must be: zero at zero, non-decreasing, 1-Lipschitz
(cannot supply faster than real time), superadditive
(``Z(a+b) >= Z(a) + Z(b)``), and consistent with its ``(alpha, delta)``
abstraction. The linear Eq.-3 bound must lower-bound the exact Lemma-1
supply for every parameter pair.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.supply import (
    EDPSupply,
    LinearSupply,
    PeriodicSlotSupply,
    SlotLayoutSupply,
)

periods = st.floats(min_value=0.1, max_value=50.0, allow_nan=False)
fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
times = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


def periodic_slot(period, budget_frac):
    return PeriodicSlotSupply(period, period * budget_frac)


@given(periods, fractions, times)
def test_periodic_zero_at_zero_and_nonnegative(p, f, t):
    z = periodic_slot(p, f)
    assert z.supply(0.0) == 0.0
    assert z.supply(t) >= 0.0


@given(periods, fractions, times, times)
def test_periodic_monotone(p, f, t1, t2):
    z = periodic_slot(p, f)
    lo, hi = min(t1, t2), max(t1, t2)
    assert z.supply(hi) >= z.supply(lo) - 1e-9


@given(periods, fractions, times, st.floats(min_value=0.0, max_value=10.0))
def test_periodic_lipschitz(p, f, t, dt):
    z = periodic_slot(p, f)
    assert z.supply(t + dt) - z.supply(t) <= dt + 1e-9


@given(periods, fractions, times, times)
@settings(max_examples=200)
def test_periodic_superadditive(p, f, a, b):
    z = periodic_slot(p, f)
    assert z.supply(a + b) >= z.supply(a) + z.supply(b) - 1e-7


@given(periods, fractions, times)
@settings(max_examples=200)
def test_linear_bound_is_safe(p, f, t):
    # Figure 3 / Eq. 3: Z'(t) <= Z(t) everywhere.
    exact = periodic_slot(p, f)
    linear = LinearSupply.from_slot(p, p * f)
    assert linear.supply(t) <= exact.supply(t) + 1e-7


@given(periods, fractions)
def test_alpha_delta_consistent(p, f):
    z = periodic_slot(p, f)
    if z.budget > 0:
        # Z is zero through the delay (up to fuzzy-floor noise at degenerate
        # budgets, bounded by one budget's worth) and positive after it.
        assert z.supply(z.delta) <= max(1e-9, z.budget * (1 + 1e-9))
        assert z.supply(z.delta + 0.25 * p) > 0 or f == 0


@given(periods, fractions, st.floats(min_value=0.01, max_value=100.0))
@settings(max_examples=200)
def test_periodic_inverse_roundtrip(p, f, w):
    z = periodic_slot(p, max(f, 0.05))
    t = z.inverse(w)
    assert z.supply(t) >= w - 1e-6
    if t > 1e-6:
        assert z.supply(max(t - 1e-4 * max(1.0, t), 0.0)) < w + 1e-6


@given(periods, fractions, fractions, times)
@settings(max_examples=150)
def test_edp_dominated_by_slot(p, f, d, t):
    # A floating EDP budget never beats the statically pinned slot.
    budget = p * f * max(d, 0.1)
    deadline = p * max(d, 0.1)
    budget = min(budget, deadline)
    edp = EDPSupply(p, budget, deadline)
    slot = PeriodicSlotSupply(p, budget)
    assert edp.supply(t) <= slot.supply(t) + 1e-7


@given(
    periods,
    st.lists(
        st.tuples(fractions, fractions), min_size=1, max_size=4
    ),
    times,
)
@settings(max_examples=150)
def test_slot_layout_invariants(p, pairs, t):
    windows = []
    for a, b in pairs:
        lo, hi = sorted((a * p, b * p))
        windows.append((lo, hi))
    z = SlotLayoutSupply(p, windows)
    assert z.supply(0.0) == 0.0
    assert 0.0 <= z.supply(t) <= t + 1e-9
    # rate consistency
    assert z.supply(20 * p) >= z.alpha * 20 * p - p  # within one cycle's slack
