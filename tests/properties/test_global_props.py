"""Property-based tests for the global scheduling simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.globalsched import simulate_global
from repro.model import Task, TaskSet
from repro.util import EPS


@st.composite
def integer_tasksets(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    tasks = []
    for i in range(n):
        period = draw(st.integers(min_value=3, max_value=12))
        wcet = draw(st.integers(min_value=1, max_value=max(period // 2, 1)))
        tasks.append(Task(f"t{i}", float(wcet), float(period)))
    return TaskSet(tasks)


ms = st.integers(min_value=1, max_value=4)


def _horizon(ts):
    return min(float(ts.hyperperiod()) * 2, 200.0)


@given(integer_tasksets(), ms)
@settings(max_examples=40, deadline=None)
def test_no_job_runs_on_two_processors_at_once(ts, m):
    h = _horizon(ts)
    res = simulate_global(ts, "EDF", m, [(0.0, h)], h)
    by_job: dict[str, list] = {}
    for s in res.trace.slices:
        by_job.setdefault(s.job, []).append(s)
    for slices in by_job.values():
        slices.sort(key=lambda s: s.start)
        for a, b in zip(slices, slices[1:]):
            if a.processor != b.processor:
                assert b.start >= a.end - EPS


@given(integer_tasksets(), ms)
@settings(max_examples=40, deadline=None)
def test_at_most_m_processors_busy(ts, m):
    h = _horizon(ts)
    res = simulate_global(ts, "EDF", m, [(0.0, h)], h)
    procs = {s.processor for s in res.trace.slices}
    assert len(procs) <= m


@given(integer_tasksets(), ms)
@settings(max_examples=40, deadline=None)
def test_executed_equals_consumed_work(ts, m):
    h = _horizon(ts)
    res = simulate_global(ts, "EDF", m, [(0.0, h)], h)
    executed = res.trace.busy_time()
    consumed = sum(j.task.wcet - j.remaining for j in res.jobs)
    assert abs(executed - consumed) < 1e-6


@given(integer_tasksets(), ms)
@settings(max_examples=40, deadline=None)
def test_more_processors_never_hurt(ts, m):
    # Global EDF miss count is monotone non-increasing in m for these
    # synchronous integer sets over the same horizon.
    h = _horizon(ts)
    misses_m = len(simulate_global(ts, "EDF", m, [(0.0, h)], h).misses)
    misses_m1 = len(simulate_global(ts, "EDF", m + 1, [(0.0, h)], h).misses)
    assert misses_m1 <= misses_m


@given(integer_tasksets())
@settings(max_examples=40, deadline=None)
def test_m_equal_one_matches_uniproc_sim(ts):
    from repro.sim import make_policy, simulate_uniproc

    h = _horizon(ts)
    glob = simulate_global(ts, "EDF", 1, [(0.0, h)], h)
    uni = simulate_uniproc(ts, make_policy(ts, "EDF"), [(0.0, h)], h)
    assert len(glob.misses) == len(uni.misses)
    assert glob.trace.busy_time() == pytest.approx(uni.trace.busy_time())


import pytest  # noqa: E402  (used by the approx above)
