"""Unit tests for task/taskset JSON round-trips."""

import pytest

from repro.experiments import paper_taskset
from repro.model import (
    Mode,
    Task,
    TaskSet,
    task_from_dict,
    task_to_dict,
    taskset_from_dict,
    taskset_from_json,
    taskset_to_dict,
    taskset_to_json,
)


class TestTaskRoundTrip:
    def test_roundtrip_preserves_everything(self):
        t = Task("x", wcet=1.5, period=10, deadline=7, mode=Mode.FS)
        assert task_from_dict(task_to_dict(t)) == t

    def test_dict_shape(self):
        d = task_to_dict(Task("x", 1, 10))
        assert d == {
            "name": "x",
            "wcet": 1.0,
            "period": 10.0,
            "deadline": 10.0,
            "mode": "NF",
        }

    def test_missing_mode_defaults_to_nf(self):
        t = task_from_dict({"name": "x", "wcet": 1, "period": 10})
        assert t.mode is Mode.NF

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            task_from_dict({"name": "x", "wcet": 1, "period": 10, "mode": "XX"})


class TestTaskSetRoundTrip:
    def test_json_roundtrip_paper_set(self):
        ts = paper_taskset()
        assert taskset_from_json(taskset_to_json(ts)) == ts

    def test_dict_roundtrip_empty(self):
        assert taskset_from_dict(taskset_to_dict(TaskSet())) == TaskSet()

    def test_schema_version_present(self):
        assert taskset_to_dict(TaskSet())["schema"] == 1

    def test_unsupported_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            taskset_from_dict({"schema": 99, "tasks": []})

    def test_json_is_stable_text(self):
        ts = TaskSet([Task("a", 1, 4)])
        assert taskset_to_json(ts) == taskset_to_json(ts)
