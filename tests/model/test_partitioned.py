"""Unit tests for PartitionedTaskSet."""

import pytest

from repro.model import Mode, PartitionedTaskSet, Task, TaskSet
from repro.model.partitioned import partition_from_names


@pytest.fixture
def tasks():
    return TaskSet(
        [
            Task("n1", 1, 10, mode=Mode.NF),
            Task("n2", 1, 20, mode=Mode.NF),
            Task("s1", 1, 10, mode=Mode.FS),
            Task("f1", 1, 10, mode=Mode.FT),
        ]
    )


@pytest.fixture
def part(tasks):
    return partition_from_names(
        tasks,
        {
            Mode.NF: [["n1"], ["n2"]],
            Mode.FS: [["s1"]],
            Mode.FT: [["f1"]],
        },
    )


class TestConstruction:
    def test_pads_missing_bins_to_parallelism(self, part):
        assert len(part.bins(Mode.NF)) == 4
        assert len(part.bins(Mode.FS)) == 2
        assert len(part.bins(Mode.FT)) == 1

    def test_too_many_bins_rejected(self, tasks):
        with pytest.raises(ValueError, match="logical processors"):
            PartitionedTaskSet({Mode.FT: [TaskSet(), TaskSet()]})

    def test_wrong_mode_assignment_rejected(self, tasks):
        with pytest.raises(ValueError, match="requires mode"):
            PartitionedTaskSet({Mode.FS: [tasks.subset(["n1"])]})

    def test_duplicate_task_rejected(self, tasks):
        nf = tasks.subset(["n1"])
        with pytest.raises(ValueError, match="twice"):
            PartitionedTaskSet({Mode.NF: [nf, nf]})

    def test_non_taskset_bin_rejected(self):
        with pytest.raises(TypeError):
            PartitionedTaskSet({Mode.NF: [["not-a-taskset"]]})  # type: ignore[list-item]


class TestAccessors:
    def test_bin(self, part):
        assert part.bin(Mode.NF, 0).names == ("n1",)
        assert part.bin(Mode.NF, 2).names == ()

    def test_mode_taskset(self, part):
        assert set(part.mode_taskset(Mode.NF).names) == {"n1", "n2"}

    def test_all_tasks_ft_first(self, part):
        names = part.all_tasks().names
        assert names[0] == "f1"  # FT slot leads the cycle
        assert set(names) == {"n1", "n2", "s1", "f1"}

    def test_processor_of(self, part):
        assert part.processor_of("n2") == (Mode.NF, 1)
        assert part.processor_of("f1") == (Mode.FT, 0)

    def test_processor_of_missing(self, part):
        with pytest.raises(KeyError):
            part.processor_of("zz")

    def test_max_bin_utilization(self, part):
        assert part.max_bin_utilization(Mode.NF) == pytest.approx(0.1)

    def test_equality(self, part, tasks):
        again = partition_from_names(
            tasks,
            {Mode.NF: [["n1"], ["n2"]], Mode.FS: [["s1"]], Mode.FT: [["f1"]]},
        )
        assert part == again

    def test_summary_and_repr(self, part):
        assert "NF" in part.summary()
        assert "FT" in repr(part)


class TestPartitionFromNames:
    def test_unplaced_task_rejected(self, tasks):
        with pytest.raises(ValueError, match="does not place"):
            partition_from_names(
                tasks,
                {Mode.NF: [["n1"], ["n2"]], Mode.FS: [["s1"]]},  # f1 missing
            )

    def test_unknown_name_rejected(self, tasks):
        with pytest.raises(KeyError):
            partition_from_names(
                tasks,
                {
                    Mode.NF: [["n1", "ghost"], ["n2"]],
                    Mode.FS: [["s1"]],
                    Mode.FT: [["f1"]],
                },
            )
