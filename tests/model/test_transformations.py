"""Unit tests for task-set transformations."""

import pytest

from repro.model import (
    Mode,
    Task,
    TaskSet,
    implicit_deadlines,
    merge_tasksets,
    scale_periods,
    scale_wcets,
    with_mode,
)


@pytest.fixture
def ts():
    return TaskSet([Task("a", 1, 4, deadline=3), Task("b", 2, 10)])


class TestScaling:
    def test_scale_periods_scales_deadlines_too(self, ts):
        out = scale_periods(ts, 2.0)
        assert out["a"].period == 8.0
        assert out["a"].deadline == 6.0

    def test_scale_periods_divides_utilization(self, ts):
        out = scale_periods(ts, 2.0)
        assert out.utilization == pytest.approx(ts.utilization / 2)

    def test_scale_periods_rejects_nonpositive(self, ts):
        with pytest.raises(ValueError):
            scale_periods(ts, 0.0)

    def test_scale_wcets(self, ts):
        out = scale_wcets(ts, 1.5)
        assert out["a"].wcet == 1.5
        assert out.utilization == pytest.approx(ts.utilization * 1.5)

    def test_scale_wcets_overflow_rejected(self, ts):
        # scaling a's wcet past its deadline must fail Task validation
        with pytest.raises(ValueError):
            scale_wcets(ts, 4.0)


class TestModeAndDeadlines:
    def test_implicit_deadlines(self, ts):
        out = implicit_deadlines(ts)
        assert out["a"].deadline == 4.0

    def test_with_mode(self, ts):
        out = with_mode(ts, Mode.FT)
        assert all(t.mode is Mode.FT for t in out)


class TestMerge:
    def test_merge_disjoint(self, ts):
        other = TaskSet([Task("c", 1, 8)])
        merged = merge_tasksets([ts, other])
        assert merged.names == ("a", "b", "c")

    def test_merge_collision_raises_by_default(self, ts):
        with pytest.raises(ValueError, match="duplicate"):
            merge_tasksets([ts, ts])

    def test_merge_collision_renames_when_asked(self, ts):
        merged = merge_tasksets([ts, ts], rename_collisions=True)
        assert "a.2" in merged.names and "b.2" in merged.names
        assert len(merged) == 4
