"""Unit tests for the TaskSet container."""

from fractions import Fraction

import pytest

from repro.model import Mode, Task, TaskSet


@pytest.fixture
def ts():
    return TaskSet(
        [
            Task("a", 1, 4, mode=Mode.NF),
            Task("b", 1, 6, mode=Mode.FS),
            Task("c", 2, 12, mode=Mode.FT),
        ]
    )


class TestConstruction:
    def test_empty(self):
        assert len(TaskSet()) == 0
        assert TaskSet().utilization == 0.0

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            TaskSet([Task("a", 1, 4), Task("a", 1, 5)])

    def test_rejects_non_task(self):
        with pytest.raises(TypeError):
            TaskSet([Task("a", 1, 4), "b"])  # type: ignore[list-item]

    def test_preserves_order(self, ts):
        assert ts.names == ("a", "b", "c")


class TestCollectionProtocol:
    def test_len(self, ts):
        assert len(ts) == 3

    def test_index_by_position(self, ts):
        assert ts[0].name == "a"

    def test_index_by_name(self, ts):
        assert ts["b"].period == 6.0

    def test_missing_name_raises_keyerror(self, ts):
        with pytest.raises(KeyError, match="nope"):
            ts["nope"]

    def test_contains_task_and_name(self, ts):
        assert "a" in ts
        assert Task("a", 1, 4, mode=Mode.NF) in ts
        assert Task("a", 2, 4, mode=Mode.NF) not in ts  # same name, diff params
        assert 42 not in ts

    def test_equality_and_hash(self, ts):
        same = TaskSet(list(ts))
        assert ts == same
        assert hash(ts) == hash(same)
        assert ts != TaskSet([ts[0]])

    def test_iteration(self, ts):
        assert [t.name for t in ts] == ["a", "b", "c"]


class TestAggregates:
    def test_utilization(self, ts):
        assert ts.utilization == pytest.approx(1 / 4 + 1 / 6 + 2 / 12)

    def test_density_with_constrained_deadline(self):
        ts = TaskSet([Task("a", 1, 4, deadline=2)])
        assert ts.density == pytest.approx(0.5)

    def test_max_utilization(self, ts):
        assert ts.max_utilization == pytest.approx(0.25)

    def test_max_utilization_empty(self):
        assert TaskSet().max_utilization == 0.0

    def test_hyperperiod(self, ts):
        assert ts.hyperperiod() == pytest.approx(12.0)

    def test_hyperperiod_fraction_exact(self, ts):
        assert ts.hyperperiod_fraction() == Fraction(12)

    def test_hyperperiod_empty_raises(self):
        with pytest.raises(ValueError):
            TaskSet().hyperperiod()

    def test_hyperperiod_rational_periods(self):
        ts = TaskSet([Task("a", 0.1, 0.5), Task("b", 0.1, 0.75)])
        assert ts.hyperperiod() == pytest.approx(1.5)


class TestRestriction:
    def test_by_mode(self, ts):
        assert ts.by_mode(Mode.FS).names == ("b",)

    def test_mode_partition_covers_everything(self, ts):
        parts = ts.mode_partition()
        total = sum(len(parts[m]) for m in Mode)
        assert total == len(ts)

    def test_subset(self, ts):
        assert ts.subset(["c", "a"]).names == ("a", "c")  # original order kept

    def test_subset_missing_raises(self, ts):
        with pytest.raises(KeyError):
            ts.subset(["a", "zz"])

    def test_without(self, ts):
        assert ts.without(["b"]).names == ("a", "c")
        assert ts.without(["missing"]).names == ts.names

    def test_add_returns_new(self, ts):
        bigger = ts.add(Task("d", 1, 8))
        assert len(bigger) == 4
        assert len(ts) == 3

    def test_sorted_by(self, ts):
        by_period = ts.sorted_by(lambda t: t.period, reverse=True)
        assert by_period.names == ("c", "b", "a")

    def test_restrict_predicate(self, ts):
        heavy = ts.restrict(lambda t: t.utilization >= 0.2)
        assert heavy.names == ("a",)


class TestMisc:
    def test_all_implicit_deadline(self, ts):
        assert ts.all_implicit_deadline
        ts2 = ts.add(Task("d", 1, 8, deadline=4))
        assert not ts2.all_implicit_deadline

    def test_summary_mentions_modes(self, ts):
        s = ts.summary()
        assert "FT" in s and "FS" in s and "NF" in s

    def test_repr(self, ts):
        assert "a" in repr(ts)
