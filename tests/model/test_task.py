"""Unit tests for the Task value object and Mode enum."""

import pytest

from repro.model import Mode, Task


class TestMode:
    def test_parallelism(self):
        assert Mode.FT.parallelism == 1
        assert Mode.FS.parallelism == 2
        assert Mode.NF.parallelism == 4

    def test_cores_per_channel(self):
        assert Mode.FT.cores_per_channel == 4
        assert Mode.FS.cores_per_channel == 2
        assert Mode.NF.cores_per_channel == 1

    def test_str(self):
        assert str(Mode.FT) == "FT"

    def test_roundtrip_by_value(self):
        assert Mode("FS") is Mode.FS


class TestTaskConstruction:
    def test_implicit_deadline_defaults_to_period(self):
        t = Task("t", wcet=1, period=10)
        assert t.deadline == 10.0

    def test_explicit_deadline(self):
        t = Task("t", wcet=1, period=10, deadline=5)
        assert t.deadline == 5.0

    def test_fields_normalised_to_float(self):
        t = Task("t", wcet=1, period=10)
        assert isinstance(t.wcet, float)
        assert isinstance(t.period, float)

    def test_default_mode_is_nf(self):
        assert Task("t", 1, 10).mode is Mode.NF

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            Task("", 1, 10)

    def test_rejects_nonpositive_wcet(self):
        with pytest.raises(ValueError):
            Task("t", 0, 10)

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            Task("t", 1, 0)

    def test_rejects_wcet_above_deadline(self):
        with pytest.raises(ValueError, match="wcet"):
            Task("t", wcet=6, period=10, deadline=5)

    def test_rejects_deadline_above_period(self):
        with pytest.raises(ValueError, match="constrained"):
            Task("t", wcet=1, period=10, deadline=11)

    def test_rejects_non_mode(self):
        with pytest.raises(TypeError):
            Task("t", 1, 10, mode="FT")


class TestTaskProperties:
    def test_utilization(self):
        assert Task("t", 2, 8).utilization == pytest.approx(0.25)

    def test_density(self):
        assert Task("t", 2, 8, deadline=4).density == pytest.approx(0.5)

    def test_implicit_deadline_flag(self):
        assert Task("t", 1, 10).implicit_deadline
        assert not Task("t", 1, 10, deadline=9).implicit_deadline

    def test_replace_changes_only_given_fields(self):
        t = Task("t", 1, 10, mode=Mode.FT)
        t2 = t.replace(wcet=2)
        assert t2.wcet == 2.0
        assert t2.period == 10.0
        assert t2.mode is Mode.FT
        assert t.wcet == 1.0  # original untouched

    def test_equality_and_hash(self):
        a = Task("t", 1, 10)
        b = Task("t", 1.0, 10.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Task("t", 2, 10)

    def test_usable_as_dict_key(self):
        d = {Task("t", 1, 10): "x"}
        assert d[Task("t", 1, 10)] == "x"

    def test_repr_mentions_name_and_mode(self):
        r = repr(Task("tau1", 1, 6, mode=Mode.FT))
        assert "tau1" in r and "FT" in r

    def test_repr_shows_explicit_deadline(self):
        assert "D=5" in repr(Task("t", 1, 10, deadline=5))
