"""Unit tests for run-time Job instances."""

import pytest

from repro.model import Job, JobState, Task


@pytest.fixture
def task():
    return Task("t", wcet=3, period=10, deadline=8)


@pytest.fixture
def job(task):
    return Job(task, release=20.0, index=2)


class TestJobBasics:
    def test_remaining_defaults_to_wcet(self, job):
        assert job.remaining == 3.0

    def test_name(self, job):
        assert job.name == "t#2"

    def test_absolute_deadline(self, job):
        assert job.absolute_deadline == 28.0

    def test_initial_state(self, job):
        assert job.state is JobState.READY
        assert job.is_active


class TestExecution:
    def test_execute_partial(self, job):
        used = job.execute(1.0)
        assert used == 1.0
        assert job.remaining == 2.0
        assert job.is_active

    def test_execute_clamps_to_remaining(self, job):
        used = job.execute(99.0)
        assert used == 3.0
        assert job.remaining == 0.0
        assert not job.is_active

    def test_execute_zero(self, job):
        assert job.execute(0.0) == 0.0

    def test_execute_negative_raises(self, job):
        with pytest.raises(ValueError):
            job.execute(-1.0)

    def test_tiny_residue_snaps_to_zero(self, job):
        job.execute(3.0 - 1e-12)
        assert job.remaining == 0.0


class TestCompletionAndDeadlines:
    def test_complete_sets_state_and_time(self, job):
        job.execute(3.0)
        job.complete(25.0)
        assert job.state is JobState.COMPLETED
        assert job.completion_time == 25.0
        assert job.response_time == 5.0

    def test_met_deadline_true(self, job):
        job.execute(3.0)
        job.complete(28.0)
        assert job.met_deadline()

    def test_met_deadline_false_when_late(self, job):
        job.execute(3.0)
        job.complete(28.5)
        assert not job.met_deadline()

    def test_met_deadline_false_when_incomplete(self, job):
        assert not job.met_deadline()

    def test_complete_twice_raises(self, job):
        job.complete(25.0)
        with pytest.raises(RuntimeError):
            job.complete(26.0)

    def test_response_time_none_before_completion(self, job):
        assert job.response_time is None


class TestAbort:
    def test_abort(self, job):
        job.abort()
        assert job.state is JobState.ABORTED
        assert not job.is_active

    def test_abort_completed_is_noop(self, job):
        job.complete(21.0)
        job.abort()
        assert job.state is JobState.COMPLETED

    def test_corrupted_flag(self, job):
        assert not job.corrupted
        job.corrupted = True
        assert job.corrupted

    def test_repr(self, job):
        assert "t#2" in repr(job)
