"""Unit tests for Bini–Buttazzo scheduling points."""

import pytest

from repro.analysis import scheduling_points
from repro.model import Task


class TestSchedulingPoints:
    def test_no_higher_priority_is_deadline_only(self):
        t = Task("t", 1, 10)
        assert scheduling_points(t, []) == (10.0,)

    def test_textbook_example(self):
        # hp task T=4; task deadline 10: points are P_1(10) =
        # P_0(floor(10/4)*4) ∪ P_0(10) = {8, 10}.
        t = Task("t", 1, 10)
        hp = [Task("h", 1, 4)]
        assert scheduling_points(t, hp) == (8.0, 10.0)

    def test_two_level_recursion(self):
        # hp periods 3 and 5, deadline 7:
        # P_2(7) = P_1(5) ∪ P_1(7) = {P_0(3), P_0(5)} ∪ {P_0(6), P_0(7)}
        t = Task("t", 1, 7)
        hp = [Task("h1", 0.5, 3), Task("h2", 0.5, 5)]
        assert scheduling_points(t, hp) == (3.0, 5.0, 6.0, 7.0)

    def test_multiple_of_period_collapses_branches(self):
        # deadline exactly = 2*T of the hp task: floor branch == t branch.
        t = Task("t", 1, 8)
        hp = [Task("h", 1, 4)]
        assert scheduling_points(t, hp) == (8.0,)

    def test_points_bounded_by_deadline(self):
        t = Task("t", 1, 10, deadline=9)
        hp = [Task("h1", 1, 4), Task("h2", 1, 6)]
        pts = scheduling_points(t, hp)
        assert all(0 < p <= 9.0 for p in pts)

    def test_deadline_always_included(self):
        t = Task("t", 2, 20, deadline=17)
        hp = [Task("h1", 1, 3), Task("h2", 1, 7)]
        assert 17.0 in scheduling_points(t, hp)

    def test_nonpositive_points_discarded(self):
        # D_i < T_j drives the floor branch to 0 — it must not appear.
        t = Task("t", 1, 10, deadline=5)
        hp = [Task("h", 1, 9)]
        pts = scheduling_points(t, hp)
        assert pts == (5.0,)
        assert all(p > 0 for p in pts)

    def test_any_hp_order_yields_an_exact_test_set(self):
        # The reduced point set depends on the recursion order, but every
        # order must produce an *exact* test: compare the point-test verdict
        # against response-time analysis for both orders on a grid of WCETs.
        from repro.analysis import fp_response_time
        from repro.analysis.workload import fp_workload_array

        a, b = Task("a", 1, 5), Task("b", 1, 7)
        for c_t in (1.0, 3.0, 5.0, 7.0, 9.0, 9.9):
            t = Task("t", c_t, 12)
            rta_ok = fp_response_time(t, [a, b]) is not None
            for hp in ([a, b], [b, a]):
                pts = scheduling_points(t, hp)
                w = fp_workload_array(t, hp, pts)
                point_ok = bool((w <= list(pts)).any())
                assert point_ok == rta_ok, f"C={c_t}, order={[x.name for x in hp]}"

    def test_points_sorted_unique(self):
        t = Task("t", 1, 24)
        hp = [Task("h1", 1, 4), Task("h2", 1, 6), Task("h3", 1, 8)]
        pts = scheduling_points(t, hp)
        assert list(pts) == sorted(set(pts))

    def test_points_subset_of_release_multiples_plus_deadline(self):
        t = Task("t", 1, 24)
        hp = [Task("h1", 1, 4), Task("h2", 1, 6)]
        pts = set(scheduling_points(t, hp))
        legal = {k * 4.0 for k in range(1, 7)} | {k * 6.0 for k in range(1, 5)} | {24.0}
        assert pts <= legal

    def test_paper_ft_taskset_points(self):
        # FT tasks of Table 1 under RM: lowest-priority tau13 (T=30, D=30).
        tau13 = Task("tau13", 2, 30)
        hp = [Task("tau10", 1, 12), Task("tau11", 1, 15), Task("tau12", 1, 20)]
        pts = scheduling_points(tau13, hp)
        # all points are multiples of 12, 15 or 20 (or the deadline 30)
        for p in pts:
            assert (
                p in (30.0,)
                or min(p % 12, p % 15, p % 20) == pytest.approx(0.0, abs=1e-9)
            )
