"""Unit tests for the jitter-aware analysis."""

import pytest

from repro.analysis import (
    deadline_set,
    deadline_set_jitter,
    demand_bound_function,
    edf_demand_jitter,
    edf_schedulable_jitter,
    fp_response_time,
    fp_response_time_jitter,
    fp_schedulable_dedicated,
    fp_schedulable_jitter,
    fp_workload,
    fp_workload_jitter,
    scheduling_points,
    scheduling_points_jitter,
)
from repro.core import min_quantum, min_quantum_jitter
from repro.model import Task, TaskSet
from repro.supply import LinearSupply


@pytest.fixture
def base():
    return TaskSet([Task("a", 1, 4), Task("b", 1, 5), Task("c", 2, 10)])


class TestDegeneratesToJitterFree:
    def test_workload(self, base):
        c = base["c"]
        hp = [base["a"], base["b"]]
        for t in (1.0, 4.0, 7.5, 10.0):
            assert fp_workload_jitter(c, hp, t) == fp_workload(c, hp, t)

    def test_points(self, base):
        c = base["c"]
        hp = [base["a"], base["b"]]
        assert scheduling_points_jitter(c, hp) == scheduling_points(c, hp)

    def test_edf_demand(self, base):
        for t in (0.0, 4.0, 9.9, 20.0):
            assert edf_demand_jitter(base, t) == demand_bound_function(base, t)

    def test_deadline_set(self, base):
        assert deadline_set_jitter(base) == deadline_set(base)

    def test_minq(self, base):
        for p in (0.5, 1.5, 3.0):
            assert min_quantum_jitter(base, "EDF", p) == pytest.approx(
                min_quantum(base, "EDF", p)
            )
            assert min_quantum_jitter(base, "RM", p) == pytest.approx(
                min_quantum(base, "RM", p)
            )

    def test_schedulability_verdicts(self, base):
        assert (
            fp_schedulable_jitter(base, priorities="RM").schedulable
            == fp_schedulable_dedicated(base, "RM").schedulable
        )


class TestJitterEffects:
    def test_interference_grows_with_jitter(self):
        victim = Task("v", 1, 20)
        calm = [Task("h", 1, 4, jitter=0.0)]
        nervy = [Task("h", 1, 4, jitter=2.0)]
        # at t = 10: ceil(10/4)=3 vs ceil(12/4)=3... use t=7.5:
        assert fp_workload_jitter(victim, calm, 7.5) == 1 + 2
        assert fp_workload_jitter(victim, nervy, 7.5) == 1 + 3

    def test_own_jitter_shrinks_window(self):
        t = Task("t", 2, 10, jitter=3.0)
        pts = scheduling_points_jitter(t, [])
        assert pts == (7.0,)  # D - J

    def test_response_time_includes_jitter(self):
        t = Task("t", 2, 10, jitter=3.0)
        r = fp_response_time_jitter(t, [])
        assert r == pytest.approx(3.0 + 2.0)

    def test_jitter_matches_classic_rta_formula(self):
        # R_i = J_i + w_i with w = C_i + sum ceil((w+J_j)/T_j) C_j.
        a = Task("a", 1, 4, jitter=1.0)
        b = Task("b", 2, 10)
        r = fp_response_time_jitter(b, [a])
        # w: 2 + ceil((w+1)/4)*1 -> w=3: 2+1=3 ✓ (ceil(4/4)=1). R = 0 + 3.
        assert r == pytest.approx(3.0)

    def test_excessive_jitter_unschedulable(self):
        t = Task("t", 2, 10, jitter=9.0)  # J > D - C
        assert fp_response_time_jitter(t, []) is None
        res = fp_schedulable_jitter(TaskSet([t]))
        assert not res.schedulable

    def test_edf_jitter_tightens_demand(self):
        calm = TaskSet([Task("a", 1, 4)])
        nervy = TaskSet([Task("a", 1, 4, jitter=1.0)])
        # jittered job demands by its (earlier) effective deadline D - J = 3
        assert edf_demand_jitter(nervy, 3.0) == 1.0
        assert edf_demand_jitter(calm, 3.0) == 0.0

    def test_edf_jitter_can_break_feasibility(self):
        # Under a delayed supply, jitter shrinks the effective deadline
        # below the supply's reachable service: calm passes, nervy fails.
        calm = TaskSet([Task("a", 2, 4)])
        nervy = TaskSet([Task("a", 2, 4, jitter=1.5)])
        supply = LinearSupply(0.9, 1.0)
        # calm: Z'(4) = 2.7 >= 2 ; nervy: Z'(2.5) = 1.35 < 2.
        assert edf_schedulable_jitter(calm, supply).schedulable
        assert not edf_schedulable_jitter(nervy, supply).schedulable

    def test_jitter_at_deadline_rejected(self):
        ts = TaskSet([Task("a", 1, 10, deadline=2, jitter=2.0)])
        res = edf_schedulable_jitter(ts)
        assert not res.schedulable

    def test_minq_grows_with_jitter(self):
        calm = TaskSet([Task("a", 1, 6), Task("b", 1, 8)])
        nervy = TaskSet(
            [Task("a", 1, 6, jitter=1.5), Task("b", 1, 8, jitter=1.0)]
        )
        for p in (0.5, 1.0, 2.0):
            assert min_quantum_jitter(nervy, "EDF", p) >= min_quantum_jitter(
                calm, "EDF", p
            ) - 1e-12

    def test_minq_jitter_boundary_is_exact(self):
        ts = TaskSet([Task("a", 1, 6, jitter=1.0), Task("b", 1, 8)])
        p = 1.5
        from repro.analysis import edf_schedulable_jitter as test_fn

        q = min_quantum_jitter(ts, "EDF", p)
        ok = LinearSupply.from_slot(p, min(q + 1e-6, p))
        bad = LinearSupply.from_slot(p, q - 1e-3)
        assert test_fn(ts, ok).schedulable
        assert not test_fn(ts, bad).schedulable

    def test_minq_infinite_when_jitter_eats_deadline(self):
        ts = TaskSet([Task("a", 1, 10, deadline=2, jitter=2.0)])
        assert min_quantum_jitter(ts, "EDF", 1.0) == float("inf")
