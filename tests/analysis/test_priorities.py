"""Unit tests for priority assignment (RM, DM, OPA)."""

import pytest

from repro.analysis import (
    audsley_opa,
    deadline_monotonic,
    fp_schedulable_supply,
    priority_order,
    rate_monotonic,
)
from repro.analysis.points import scheduling_points
from repro.analysis.workload import fp_workload_array
from repro.model import Task, TaskSet
from repro.supply import LinearSupply


@pytest.fixture
def ts():
    return TaskSet(
        [
            Task("slow", 1, 20, deadline=6),
            Task("fast", 1, 5),
            Task("mid", 1, 10, deadline=8),
        ]
    )


class TestStaticOrders:
    def test_rm_by_period(self, ts):
        assert [t.name for t in rate_monotonic(ts)] == ["fast", "slow", "mid"][0:1] + [
            "mid",
            "slow",
        ]

    def test_dm_by_deadline(self, ts):
        assert [t.name for t in deadline_monotonic(ts)] == ["fast", "slow", "mid"]

    def test_ties_broken_by_name(self):
        ts = TaskSet([Task("b", 1, 10), Task("a", 1, 10)])
        assert [t.name for t in rate_monotonic(ts)] == ["a", "b"]

    def test_priority_order_dispatch(self, ts):
        assert priority_order(ts, "rm") == rate_monotonic(ts)
        assert priority_order(ts, "DM") == deadline_monotonic(ts)

    def test_unknown_policy_rejected(self, ts):
        with pytest.raises(ValueError):
            priority_order(ts, "LLF")

    def test_rm_equals_dm_for_implicit_deadlines(self):
        ts = TaskSet([Task("a", 1, 4), Task("b", 1, 9), Task("c", 1, 6)])
        assert rate_monotonic(ts) == deadline_monotonic(ts)


class TestAudsleyOPA:
    @staticmethod
    def _point_test(supply):
        def feasible(task, hp):
            pts = scheduling_points(task, list(hp))
            if not pts:
                return False
            w = fp_workload_array(task, list(hp), pts)
            z = supply.supply_array(pts)
            return bool((z >= w - 1e-9).any())

        return feasible

    def test_opa_finds_order_when_dm_works(self, ts):
        order = audsley_opa(ts, self._point_test(LinearSupply(1.0, 0.0)))
        assert order is not None
        res = fp_schedulable_supply(ts, LinearSupply(1.0, 0.0), order)
        assert res.schedulable

    def test_opa_beats_rm_on_non_dm_optimal_case(self):
        # Under reduced supply, OPA still finds an order whenever one exists;
        # we verify the returned order passes the same test it optimised.
        ts = TaskSet(
            [Task("a", 1, 8, deadline=7), Task("b", 1, 8, deadline=7.5)]
        )
        supply = LinearSupply(0.5, 2.0)
        order = audsley_opa(ts, self._point_test(supply))
        assert order is not None
        assert fp_schedulable_supply(ts, supply, order).schedulable

    def test_opa_none_when_impossible(self):
        ts = TaskSet([Task("a", 3, 4), Task("b", 3, 4.5, deadline=4)])
        order = audsley_opa(ts, self._point_test(LinearSupply(1.0, 0.0)))
        assert order is None

    def test_opa_empty_taskset(self):
        assert audsley_opa(TaskSet(), lambda t, hp: True) == ()

    def test_opa_returns_permutation(self, ts):
        order = audsley_opa(ts, self._point_test(LinearSupply(1.0, 0.0)))
        assert sorted(t.name for t in order) == sorted(ts.names)
