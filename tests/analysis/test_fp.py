"""Unit tests for fixed-priority schedulability (dedicated and supply-aware)."""

import pytest

from repro.analysis import (
    fp_response_time,
    fp_response_time_supply,
    fp_schedulable_dedicated,
    fp_schedulable_supply,
    hyperbolic_bound_test,
    liu_layland_bound,
    liu_layland_test,
)
from repro.model import Task, TaskSet
from repro.supply import DedicatedSupply, LinearSupply, NullSupply, PeriodicSlotSupply


@pytest.fixture
def liu_layland_classic():
    # The canonical RM-schedulable example (U ≈ 0.753).
    return TaskSet([Task("a", 1, 4), Task("b", 1, 5), Task("c", 2, 10)])


@pytest.fixture
def rm_infeasible():
    # U = 1.0 non-harmonic: EDF-schedulable, RM misses b (W_b(4)=4.5,
    # W_b(5)=5.5 — no point satisfies the bound).
    return TaskSet([Task("a", 1, 2), Task("b", 2.5, 5)])


class TestDedicatedPointTest:
    def test_schedulable_set_accepted(self, liu_layland_classic):
        assert fp_schedulable_dedicated(liu_layland_classic, "RM").schedulable

    def test_overloaded_set_rejected(self):
        ts = TaskSet([Task("a", 3, 4), Task("b", 3, 8)])
        res = fp_schedulable_dedicated(ts, "RM")
        assert not res.schedulable
        assert res.first_failure is not None
        assert res.first_failure.task.name == "b"

    def test_full_utilization_harmonic_accepted(self):
        # Harmonic periods: RM schedulable up to U = 1.
        ts = TaskSet([Task("a", 2, 4), Task("b", 2, 8), Task("c", 2, 16)])
        assert fp_schedulable_dedicated(ts, "RM").schedulable

    def test_rm_edf_gap(self, rm_infeasible):
        # U=1 non-harmonic: RM fails (point test exact).
        assert not fp_schedulable_dedicated(rm_infeasible, "RM").schedulable

    def test_witness_satisfies_workload_bound(self, liu_layland_classic):
        res = fp_schedulable_dedicated(liu_layland_classic, "RM")
        for v in res.verdicts:
            assert v.witness is not None
            assert v.witness <= v.task.deadline + 1e-9

    def test_empty_taskset(self):
        assert fp_schedulable_dedicated(TaskSet()).schedulable

    def test_explicit_priority_order(self, liu_layland_classic):
        order = tuple(liu_layland_classic)  # a, b, c == RM order here
        assert fp_schedulable_supply(
            liu_layland_classic, DedicatedSupply(), order
        ).schedulable

    def test_bad_priority_order_rejected(self, liu_layland_classic):
        with pytest.raises(ValueError, match="permutation"):
            fp_schedulable_supply(
                liu_layland_classic,
                DedicatedSupply(),
                (Task("zz", 1, 4),),
            )


class TestSupplyAwarePointTest:
    def test_half_supply_halves_capacity(self):
        # One task, U = 0.4; supply alpha = 0.5 with zero delay: fine.
        ts = TaskSet([Task("a", 4, 10)])
        assert fp_schedulable_supply(ts, LinearSupply(0.5, 0.0)).schedulable

    def test_delay_can_break_short_deadline(self):
        ts = TaskSet([Task("a", 1, 10, deadline=2)])
        ok = fp_schedulable_supply(ts, LinearSupply(1.0, 0.5))
        bad = fp_schedulable_supply(ts, LinearSupply(1.0, 1.5))
        assert ok.schedulable
        assert not bad.schedulable  # 1.0*(2-1.5) = 0.5 < C = 1

    def test_null_supply_rejects_everything(self):
        ts = TaskSet([Task("a", 1, 100)])
        assert not fp_schedulable_supply(ts, NullSupply()).schedulable

    def test_exact_supply_accepts_more_than_linear(self):
        # A case where the linear bound fails but the exact Lemma-1 supply
        # passes: demand C=1 due at the exact slot end.
        ts = TaskSet([Task("a", 1, 4, deadline=2)])
        P, Q = 4.0, 2.0
        exact = PeriodicSlotSupply(P, Q)
        linear = LinearSupply.from_slot(P, Q)
        # exact Z(2) = 0? window [2, 4): Z(2)=0 -> actually check t=2:
        # blackout is P-Q=2, so Z(2)=0 under both. Use deadline 3:
        ts = TaskSet([Task("a", 1, 4, deadline=3)])
        assert fp_schedulable_supply(ts, exact).schedulable  # Z(3)=1 >= 1
        assert not fp_schedulable_supply(ts, linear).schedulable  # 0.5*(3-2)=0.5 < 1

    def test_dedicated_equals_classic(self, liu_layland_classic):
        sup = fp_schedulable_supply(liu_layland_classic, DedicatedSupply(), "RM")
        ded = fp_schedulable_dedicated(liu_layland_classic, "RM")
        assert sup.schedulable == ded.schedulable


class TestResponseTimeAnalysis:
    def test_textbook_response_times(self):
        a, b, c = Task("a", 1, 4), Task("b", 1, 5), Task("c", 2, 10)
        assert fp_response_time(a, []) == pytest.approx(1.0)
        assert fp_response_time(b, [a]) == pytest.approx(2.0)
        assert fp_response_time(c, [a, b]) == pytest.approx(4.0)

    def test_unschedulable_returns_none(self):
        low = Task("low", 3, 8)
        hp = [Task("h", 3, 4)]  # leaves 1 unit per 4 — R grows past D=8
        assert fp_response_time(low, hp) is None

    def test_rta_agrees_with_point_test(self, liu_layland_classic):
        order = sorted(liu_layland_classic, key=lambda t: t.period)
        for i, t in enumerate(order):
            r = fp_response_time(t, order[:i])
            assert r is not None and r <= t.deadline

    def test_supply_rta_linear_formula(self):
        # Single task under linear supply: R = delta + C/alpha.
        t = Task("a", 1, 10)
        r = fp_response_time_supply(t, [], LinearSupply(0.5, 2.0))
        assert r == pytest.approx(2.0 + 1.0 / 0.5)

    def test_supply_rta_with_interference(self):
        t = Task("b", 1, 10)
        h = Task("a", 1, 5)
        r = fp_response_time_supply(t, [h], LinearSupply(0.5, 1.0))
        # W = 2 while R <= 5: R = 1 + 2/0.5 = 5.0 (boundary: ceil(5/5)=1)
        assert r == pytest.approx(5.0)

    def test_supply_rta_null_supply(self):
        assert fp_response_time_supply(Task("a", 1, 10), [], NullSupply()) is None

    def test_supply_rta_exact_periodic(self):
        # Slot [2,4) per P=4; C=1 released at worst phase completes at Z^{-1}(1)=3.
        t = Task("a", 1, 8)
        r = fp_response_time_supply(t, [], PeriodicSlotSupply(4.0, 2.0))
        assert r == pytest.approx(3.0)


class TestUtilizationBounds:
    def test_liu_layland_bound_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(2 * (2 ** 0.5 - 1))

    def test_liu_layland_bound_decreasing_to_ln2(self):
        import math

        assert liu_layland_bound(1000) == pytest.approx(math.log(2), abs=1e-3)

    def test_liu_layland_test(self, liu_layland_classic):
        assert liu_layland_test(liu_layland_classic)

    def test_liu_layland_rejects_above_bound(self):
        ts = TaskSet([Task("a", 1, 2), Task("b", 1, 3)])  # U = 0.833 > 0.828
        assert not liu_layland_test(ts)

    def test_hyperbolic_dominates_liu_layland(self):
        # U=0.833 case: hyperbolic accepts (1.5 * 4/3 = 2.0 <= 2).
        ts = TaskSet([Task("a", 1, 2), Task("b", 1, 3)])
        assert hyperbolic_bound_test(ts)

    def test_hyperbolic_rejects_overload(self):
        ts = TaskSet([Task("a", 1, 2), Task("b", 2, 3)])
        assert not hyperbolic_bound_test(ts)

    def test_bounds_require_implicit_deadlines(self):
        ts = TaskSet([Task("a", 1, 4, deadline=3)])
        with pytest.raises(ValueError):
            liu_layland_test(ts)
        with pytest.raises(ValueError):
            hyperbolic_bound_test(ts)

    def test_empty_sets_pass(self):
        assert liu_layland_test(TaskSet())
        assert hyperbolic_bound_test(TaskSet())

    def test_bound_rejects_bad_n(self):
        with pytest.raises(ValueError):
            liu_layland_bound(0)
