"""Unit tests for the integer fast kernels: rescale, selection, exactness.

The contract under test (see :mod:`repro.analysis.kernels`): whenever a task
set rescales onto an exact integer time base the fast path must return
*bit-identical* results to the float path, and whenever it does not the
entry points must silently fall back — with the selection recorded in the
module counters the campaign engine aggregates.
"""

import math
import os
import random

import numpy as np
import pytest

from repro.analysis import (
    deadline_set,
    demand_bound_function,
    edf_schedulable_dedicated,
    fp_workload,
    fp_workload_array,
    kernels,
    qpa_schedulable,
    scheduling_points,
)
from repro.analysis.edf import demand_bound_array, synchronous_busy_period
from repro.model import Task, TaskSet
from repro.util import EPS


@pytest.fixture
def integer_pair():
    return TaskSet([Task("x", 2, 4), Task("y", 4, 8)])


#: Two coprime ~1e9 integer periods: scale 1, but the hyperperiod is their
#: product (~1e18 > 2**53), so the rescale pass must refuse the set.
OVERFLOW_TASKS = TaskSet(
    [
        Task("p", 1000.0, 999999937.0, 5000.0),
        Task("q", 1000.0, 999999893.0, 5000.0),
    ]
)


class TestRescale:
    def test_integer_periods_scale_one(self, integer_pair):
        sts = kernels.rescale(integer_pair.tasks)
        assert sts is not None
        assert sts.scale == 1
        assert sts.periods.tolist() == [4, 8]
        assert sts.deadlines.tolist() == [4, 8]
        assert sts.hyperperiod == 8

    def test_dyadic_periods_power_of_two_scale(self):
        ts = TaskSet([Task("a", 0.25, 0.5), Task("b", 0.5, 1.75)])
        sts = kernels.rescale(ts.tasks)
        assert sts is not None
        assert sts.scale == 4
        assert sts.periods.tolist() == [2, 7]
        assert sts.hyperperiod == 14
        assert sts.time_unit == 0.25

    def test_non_dyadic_denominator_refused(self):
        # float 0.1 is the dyadic 3602879701896397/2**55; its denominator
        # blows the 1e9 faithfulness bound, so the set must fall back.
        ts = TaskSet([Task("a", 0.01, 0.1)])
        assert kernels.rescale(ts.tasks) is None

    def test_hyperperiod_overflow_refused(self):
        assert kernels.rescale(OVERFLOW_TASKS.tasks) is None

    def test_empty_refused(self):
        assert kernels.rescale(()) is None

    def test_rescale_is_cached(self, integer_pair):
        assert kernels.rescale(integer_pair.tasks) is kernels.rescale(
            integer_pair.tasks
        )

    def test_wcets_exact_rationals(self):
        ts = TaskSet([Task("a", 0.375, 4), Task("b", 1.5, 8)])
        sts = kernels.rescale(ts.tasks)
        assert sts is not None
        assert sts.wcet_den == 8
        assert sts.wcet_nums == (3, 12)


class TestToggleAndCounters:
    def test_set_fast_kernels_returns_previous_and_mirrors_env(self):
        previous = kernels.set_fast_kernels(False)
        try:
            assert not kernels.fast_kernels_enabled()
            assert os.environ["REPRO_FAST_KERNELS"] == "0"
            assert kernels.set_fast_kernels(True) is False
            assert os.environ["REPRO_FAST_KERNELS"] == "1"
        finally:
            kernels.set_fast_kernels(previous)

    def test_kernels_forced_restores(self):
        before = kernels.fast_kernels_enabled()
        with kernels.kernels_forced(not before):
            assert kernels.fast_kernels_enabled() is not before
        assert kernels.fast_kernels_enabled() is before

    def test_counters_track_selection(self, integer_pair):
        before = kernels.kernel_counters()
        with kernels.kernels_forced(True):
            deadline_set(integer_pair)  # rescalable -> fast
            qpa_schedulable(OVERFLOW_TASKS)  # overflow -> fallback
        delta = kernels.counters_delta(before)
        assert delta["fast"] >= 1
        assert delta["fallback"] >= 1


def random_taskset(rng: random.Random, dyadic: bool) -> TaskSet:
    """Random constrained-deadline set, integer or dyadic-grid parameters."""
    den = rng.choice([2, 4, 8]) if dyadic else 1
    tasks = []
    for i in range(rng.randint(1, 4)):
        period = rng.randint(3 * den, 24 * den) / den
        wcet = rng.uniform(0.05, period / 2)
        deadline = rng.randint(max(1, int(wcet * den) + 1), int(period * den)) / den
        tasks.append(Task(f"t{i}", wcet, period, min(deadline, period)))
    return TaskSet(tasks)


class TestFastMatchesFallback:
    """The exactness gate: fast and float paths agree on rescalable sets."""

    @pytest.mark.parametrize("dyadic", [False, True])
    def test_edf_kernels_bit_identical(self, dyadic):
        rng = random.Random(7 if dyadic else 11)
        for _ in range(40):
            ts = random_taskset(rng, dyadic)
            if kernels.rescale(ts.tasks) is None:
                continue
            with kernels.kernels_forced(True):
                fast_dl = deadline_set(ts)
                fast_w = demand_bound_array(ts, fast_dl)
                fast_qpa = qpa_schedulable(ts)
                fast_edf = edf_schedulable_dedicated(ts)
            with kernels.kernels_forced(False):
                slow_dl = deadline_set(ts)
                slow_w = demand_bound_array(ts, slow_dl)
                slow_qpa = qpa_schedulable(ts)
                slow_edf = edf_schedulable_dedicated(ts)
            assert fast_dl == slow_dl
            assert np.array_equal(fast_w, slow_w)
            assert fast_qpa is slow_qpa
            assert fast_edf.schedulable == slow_edf.schedulable
            assert fast_edf.points_checked == slow_edf.points_checked

    @pytest.mark.parametrize("dyadic", [False, True])
    def test_fp_kernels_bit_identical(self, dyadic):
        rng = random.Random(13 if dyadic else 17)
        for _ in range(40):
            ts = random_taskset(rng, dyadic)
            tasks = sorted(ts, key=lambda t: t.deadline)
            task, hp = tasks[-1], tasks[:-1]
            if kernels.rescale((task, *hp)) is None:
                continue
            with kernels.kernels_forced(True):
                fast_pts = scheduling_points(task, hp)
                fast_w = fp_workload_array(task, hp, fast_pts) if fast_pts else None
                fast_s = fp_workload(task, hp, task.deadline)
            with kernels.kernels_forced(False):
                slow_pts = scheduling_points(task, hp)
                slow_w = fp_workload_array(task, hp, slow_pts) if slow_pts else None
                slow_s = fp_workload(task, hp, task.deadline)
            assert fast_pts == slow_pts
            assert fast_s == slow_s
            if fast_w is not None:
                assert np.array_equal(fast_w, slow_w)

    def test_busy_period_matches_fallback(self):
        rng = random.Random(23)
        for _ in range(40):
            ts = random_taskset(rng, dyadic=rng.random() < 0.5)
            if ts.utilization > 1.0 or kernels.rescale(ts.tasks) is None:
                continue
            with kernels.kernels_forced(True):
                fast = synchronous_busy_period(ts)
            with kernels.kernels_forced(False):
                slow = synchronous_busy_period(ts)
            # the exact rational rounds to float once; the float iteration
            # accumulates rounding, so agreement is to the last ulp only
            assert fast == pytest.approx(slow, rel=1e-12)

    def test_overload_raises_both_paths(self):
        ts = TaskSet([Task("a", 3, 4), Task("b", 3, 8)])
        for enabled in (True, False):
            with kernels.kernels_forced(enabled):
                with pytest.raises(ValueError):
                    synchronous_busy_period(ts)


class TestToleranceUnification:
    """Satellite regressions: one tolerance rule scalar and vector."""

    def test_scalar_vector_demand_agree_in_snap_band(self):
        # Historically the scalar path snapped (t + T - D)/T to the nearest
        # integer within max(EPS, REL_TOL*|x|) while the vector path used
        # floor(x + EPS): at t = 1e6 - 1e-5 the job counts diverged by one.
        ts = TaskSet([Task("a", 0.5, 1.0)])
        t = 1e6 - 1e-5
        with kernels.kernels_forced(False):
            scalar = demand_bound_function(ts, t)
            vector = demand_bound_array(ts, [t])
        assert scalar == vector[0] == 1e6 * 0.5

    def test_scalar_vector_demand_agree_at_exact_deadlines(self):
        ts = TaskSet([Task("a", 1, 4, 3), Task("b", 2, 6, 5)])
        points = [k * p + d for p, d in ((4.0, 3.0), (6.0, 5.0)) for k in range(12)]
        for enabled in (True, False):
            with kernels.kernels_forced(enabled):
                vector = demand_bound_array(ts, points)
                for t, w in zip(points, vector):
                    assert demand_bound_function(ts, t) == w

    def test_deadline_on_horizon_included_both_paths(self, integer_pair):
        for enabled in (True, False):
            with kernels.kernels_forced(enabled):
                pts = deadline_set(integer_pair, 12.0)
            assert pts == (4.0, 8.0, 12.0)

    def test_deadline_just_past_horizon_excluded_fallback(self):
        # the float band rule: > EPS past the horizon is out, within is in
        ts = TaskSet([Task("a", 1, 4)])
        with kernels.kernels_forced(False):
            assert 12.0 in deadline_set(ts, 12.0 + 2 * EPS)
            assert deadline_set(ts, 12.0 - 2 * EPS) == (4.0, 8.0)

    def test_busy_period_iterates_to_exact_fixed_point(self):
        # The former convergence rule |w_next - w| <= EPS*max(1, w) opens a
        # ~1e-3 band at w ~ 1e6 and accepts the penultimate iterate of this
        # set (1000499.2495); the exact fixed point is one step further.
        ts = TaskSet(
            [Task("big", 999999.0, 4000000.0), Task("tiny", 0.000125, 0.25)]
        )
        for enabled in (True, False):
            with kernels.kernels_forced(enabled):
                assert synchronous_busy_period(ts) == 1000499.249625

        # document the historical failure: replay the float iteration with
        # the old tolerance and watch it stop early
        w = float(sum(t.wcet for t in ts))
        while True:
            w_next = float(
                sum(np.ceil(w / t.period - EPS) * t.wcet for t in ts)
            )
            if abs(w_next - w) <= EPS * max(1.0, w):
                break
            w = w_next
        assert w == 1000499.2495  # != the true fixed point


class TestOverflowFallback:
    """Sets beyond the rescale bound must route to the float path."""

    def test_overflow_set_falls_back_with_identical_verdicts(self):
        before = kernels.kernel_counters()
        with kernels.kernels_forced(True):
            fast_qpa = qpa_schedulable(OVERFLOW_TASKS)
            fast_dl = deadline_set(OVERFLOW_TASKS, 50_000.0)
        assert kernels.counters_delta(before)["fast"] == 0
        assert kernels.counters_delta(before)["fallback"] >= 2
        with kernels.kernels_forced(False):
            assert qpa_schedulable(OVERFLOW_TASKS) is fast_qpa
            assert deadline_set(OVERFLOW_TASKS, 50_000.0) == fast_dl

    def test_off_grid_point_falls_back(self, integer_pair):
        # a query strictly between grid points cannot use the integer path
        with kernels.kernels_forced(True):
            before = kernels.kernel_counters()
            demand_bound_function(integer_pair, 4.0 + 1e-4)
            assert kernels.counters_delta(before)["fallback"] == 1


def _f_quantum(t: np.ndarray, w: np.ndarray, period: float) -> np.ndarray:
    tp = t - period
    return 0.5 * (np.sqrt(tp * tp + 4.0 * period * w) - tp)


class TestBindingHull:
    def test_hull_preserves_extrema_bit_identically(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            n = int(rng.integers(1, 60))
            pts = np.unique(rng.uniform(0.1, 100.0, size=n))
            w = rng.uniform(0.0, 50.0, size=pts.size)
            period = float(rng.uniform(0.1, 50.0))
            vals = _f_quantum(pts, w, period)
            upper = kernels.binding_hull(pts, w, upper=True)
            lower = kernels.binding_hull(pts, w, upper=False)
            assert vals[upper].max() == vals.max()
            assert vals[lower].min() == vals.min()

    def test_small_inputs_untouched(self):
        pts = np.asarray([1.0, 2.0])
        w = np.asarray([3.0, 1.0])
        assert kernels.binding_hull(pts, w, upper=True).tolist() == [0, 1]
