"""Unit tests for the FP workload W_i(t) (Eq. 5)."""

import numpy as np
import pytest

from repro.analysis import fp_workload, fp_workload_array
from repro.model import Task


class TestWorkload:
    def test_no_interference(self):
        t = Task("t", 2, 10)
        assert fp_workload(t, [], 5.0) == 2.0

    def test_single_interferer(self):
        t = Task("t", 2, 10)
        h = Task("h", 1, 4)
        # ceil(5/4) = 2 jobs of h
        assert fp_workload(t, [h], 5.0) == 2 + 2 * 1

    def test_boundary_is_exclusive(self):
        # At t = 8 exactly, ceil(8/4) = 2 (the job released AT 8 not counted).
        t = Task("t", 2, 10)
        h = Task("h", 1, 4)
        assert fp_workload(t, [h], 8.0) == 2 + 2 * 1

    def test_just_after_boundary(self):
        t = Task("t", 2, 10)
        h = Task("h", 1, 4)
        assert fp_workload(t, [h], 8.1) == 2 + 3 * 1

    def test_array_matches_scalar(self):
        t = Task("t", 2, 10)
        hp = [Task("h1", 1, 3), Task("h2", 1, 7)]
        ts = [1.0, 3.0, 6.5, 7.0, 10.0]
        arr = fp_workload_array(t, hp, ts)
        expected = [fp_workload(t, hp, x) for x in ts]
        assert np.allclose(arr, expected)

    def test_array_rejects_nonpositive(self):
        t = Task("t", 2, 10)
        with pytest.raises(ValueError):
            fp_workload_array(t, [], [1.0, 0.0])

    def test_scalar_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fp_workload(Task("t", 1, 5), [], 0.0)

    def test_monotone_in_t(self):
        t = Task("t", 2, 50)
        hp = [Task("h1", 1, 3), Task("h2", 2, 7)]
        ts = np.linspace(0.5, 50, 200)
        w = fp_workload_array(t, hp, ts)
        assert np.all(np.diff(w) >= -1e-12)
