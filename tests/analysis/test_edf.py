"""Unit tests for EDF analysis: dbf, dlSet, Theorem 2, QPA."""

import numpy as np
import pytest

from repro.analysis import (
    deadline_set,
    demand_bound_function,
    edf_schedulable_dedicated,
    edf_schedulable_supply,
    edf_utilization_test,
    qpa_schedulable,
)
from repro.analysis.edf import demand_bound_array, synchronous_busy_period
from repro.model import Task, TaskSet
from repro.supply import DedicatedSupply, LinearSupply, PeriodicSlotSupply


@pytest.fixture
def pair_full():
    """U = 1.0, EDF-schedulable (implicit deadlines)."""
    return TaskSet([Task("x", 2, 4), Task("y", 4, 8)])


class TestDemandBoundFunction:
    def test_zero_before_first_deadline(self):
        ts = TaskSet([Task("a", 1, 4)])
        assert demand_bound_function(ts, 3.9) == 0.0

    def test_steps_at_deadlines(self):
        ts = TaskSet([Task("a", 1, 4)])
        assert demand_bound_function(ts, 4.0) == 1.0
        assert demand_bound_function(ts, 7.9) == 1.0
        assert demand_bound_function(ts, 8.0) == 2.0

    def test_constrained_deadline_shifts_steps(self):
        ts = TaskSet([Task("a", 1, 4, deadline=2)])
        assert demand_bound_function(ts, 1.9) == 0.0
        assert demand_bound_function(ts, 2.0) == 1.0
        assert demand_bound_function(ts, 6.0) == 2.0

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            demand_bound_function(TaskSet([Task("a", 1, 4)]), -1.0)

    def test_array_matches_scalar(self, pair_full):
        ts_points = [0.0, 3.9, 4.0, 8.0, 12.0, 16.0]
        arr = demand_bound_array(pair_full, ts_points)
        expected = [demand_bound_function(pair_full, t) for t in ts_points]
        assert np.allclose(arr, expected)

    def test_dbf_at_hyperperiod_equals_total_work(self, pair_full):
        h = pair_full.hyperperiod()
        expected = sum(t.wcet * h / t.period for t in pair_full)
        assert demand_bound_function(pair_full, h) == pytest.approx(expected)


class TestDeadlineSet:
    def test_default_horizon_is_hyperperiod(self, pair_full):
        pts = deadline_set(pair_full)
        assert max(pts) == pytest.approx(8.0)

    def test_contents(self):
        ts = TaskSet([Task("a", 1, 4), Task("b", 1, 6)])
        assert deadline_set(ts, 12.0) == (4.0, 6.0, 8.0, 12.0)

    def test_constrained_deadlines(self):
        ts = TaskSet([Task("a", 1, 4, deadline=3)])
        assert deadline_set(ts, 8.0) == (3.0, 7.0)

    def test_empty_taskset(self):
        assert deadline_set(TaskSet()) == ()

    def test_sorted_unique(self):
        ts = TaskSet([Task("a", 1, 4), Task("b", 1, 8)])
        pts = deadline_set(ts, 16.0)
        assert list(pts) == sorted(set(pts))


class TestDedicatedEDF:
    def test_full_utilization_accepted(self, pair_full):
        assert edf_schedulable_dedicated(pair_full).schedulable

    def test_overload_rejected(self):
        ts = TaskSet([Task("a", 3, 4), Task("b", 3, 8)])  # U = 1.125
        res = edf_schedulable_dedicated(ts)
        assert not res.schedulable
        assert res.violation == float("inf")  # rejected on utilization

    def test_constrained_deadline_failure_detected(self):
        # U < 1 but deadline demand fails: two tasks due at t=2 need 3 units.
        ts = TaskSet(
            [Task("a", 1, 10, deadline=2), Task("b", 2, 10, deadline=2)]
        )
        res = edf_schedulable_dedicated(ts)
        assert not res.schedulable
        assert res.violation == pytest.approx(2.0)
        assert res.demand_at_violation == pytest.approx(3.0)

    def test_empty_taskset(self):
        assert edf_schedulable_dedicated(TaskSet()).schedulable

    def test_utilization_test_exact_for_implicit(self, pair_full):
        assert edf_utilization_test(pair_full)
        heavier = TaskSet([Task("a", 3, 4), Task("b", 3, 8)])  # U = 1.125
        assert not edf_utilization_test(heavier)

    def test_utilization_test_requires_implicit(self):
        with pytest.raises(ValueError):
            edf_utilization_test(TaskSet([Task("a", 1, 4, deadline=2)]))


class TestSupplyAwareEDF:
    def test_paper_ft_subset_at_design_point(self):
        # Table 2(b): Q̃_FT = 0.820 at P = 2.966 must be exactly sufficient.
        ft = TaskSet(
            [
                Task("tau10", 1, 12),
                Task("tau11", 1, 15),
                Task("tau12", 1, 20),
                Task("tau13", 2, 30),
            ]
        )
        P = 2.9664
        q_min = 0.8203825886536009  # min_quantum(ft, "EDF", P)
        ok = edf_schedulable_supply(
            ft, LinearSupply((q_min + 1e-6) / P, P - (q_min + 1e-6))
        )
        bad = edf_schedulable_supply(
            ft, LinearSupply((q_min - 1e-3) / P, P - (q_min - 1e-3))
        )
        assert ok.schedulable
        assert not bad.schedulable

    def test_rate_below_utilization_rejected_fast(self, pair_full):
        res = edf_schedulable_supply(pair_full, LinearSupply(0.9, 0.0))
        assert not res.schedulable
        assert res.points_checked == 0  # rejected by the necessary condition

    def test_dedicated_supply_matches_dedicated_test(self, pair_full):
        assert (
            edf_schedulable_supply(pair_full, DedicatedSupply()).schedulable
            == edf_schedulable_dedicated(pair_full).schedulable
        )

    def test_exact_supply_accepts_more_than_linear(self):
        ts = TaskSet([Task("a", 1, 4, deadline=3)])
        assert edf_schedulable_supply(ts, PeriodicSlotSupply(4.0, 2.0)).schedulable
        assert not edf_schedulable_supply(
            ts, LinearSupply.from_slot(4.0, 2.0)
        ).schedulable

    def test_horizon_override(self, pair_full):
        res = edf_schedulable_supply(
            pair_full, DedicatedSupply(), horizon=100.0
        )
        assert res.schedulable
        assert res.points_checked > 10


class TestBusyPeriodAndQPA:
    def test_busy_period_simple(self):
        # a: C=2,T=4 ; b: C=1,T=8 — w converges: w0=3, w1=2*ceil(3/4)+1=3 ✓
        ts = TaskSet([Task("a", 2, 4), Task("b", 1, 8)])
        assert synchronous_busy_period(ts) == pytest.approx(3.0)

    def test_busy_period_full_utilization(self, pair_full):
        assert synchronous_busy_period(pair_full) == pytest.approx(8.0)

    def test_busy_period_rejects_overload(self):
        over = TaskSet([Task("a", 3, 4), Task("b", 3, 8)])  # U = 1.125
        with pytest.raises(ValueError):
            synchronous_busy_period(over)

    def test_qpa_agrees_with_processor_demand_on_random_sets(self, rng):
        from repro.generators import generate_taskset

        for i in range(30):
            n = int(rng.integers(2, 6))
            u = float(rng.uniform(0.5, 1.0))
            ts = generate_taskset(
                n, u, rng, period_low=4, period_high=40,
                deadline_factor=float(rng.uniform(0.6, 1.0)),
                period_granularity=1.0,
            )
            assert qpa_schedulable(ts) == edf_schedulable_dedicated(ts).schedulable

    def test_qpa_trivial_cases(self, pair_full):
        assert qpa_schedulable(TaskSet())
        assert qpa_schedulable(pair_full)
        over = TaskSet([Task("a", 3, 4), Task("b", 3, 8)])  # U = 1.125
        assert not qpa_schedulable(over)
