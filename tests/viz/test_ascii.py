"""ASCII rendering tests."""

import numpy as np
import pytest

from repro.supply import LinearSupply, PeriodicSlotSupply
from repro.viz import ascii_plot, render_region, render_supply


class TestAsciiPlot:
    def test_basic_plot_dimensions(self):
        xs = np.linspace(0, 1, 50)
        out = ascii_plot({"s": (xs, xs**2)}, width=40, height=10)
        lines = out.splitlines()
        plot_rows = [l for l in lines if l.startswith("|")]
        assert len(plot_rows) == 10
        assert all(len(l) == 42 for l in plot_rows)

    def test_marker_appears(self):
        xs = np.linspace(0, 1, 50)
        out = ascii_plot({"s": (xs, xs)}, width=40, height=10)
        assert "*" in out

    def test_legend_names_series(self):
        xs = np.linspace(0, 1, 10)
        out = ascii_plot({"alpha": (xs, xs), "beta": (xs, 1 - xs)})
        assert "*=alpha" in out and "o=beta" in out

    def test_hline_rendered(self):
        xs = np.linspace(0, 1, 10)
        out = ascii_plot({"s": (xs, xs)}, hline=0.5)
        assert "-" in out and "ref(0.5)" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_empty_markers_rejected(self):
        xs = np.linspace(0, 1, 5)
        with pytest.raises(ValueError, match="markers"):
            ascii_plot({"s": (xs, xs)}, markers="")

    def test_more_series_than_markers_all_render(self):
        """Markers cycle: series 7+ used to be silently dropped from both
        the canvas and the legend."""
        xs = np.linspace(0, 1, 10)
        series = {f"s{i}": (xs, xs * 0 + i) for i in range(8)}
        out = ascii_plot(series, width=40, height=20)
        legend = out.splitlines()[-1]
        for i in range(8):
            assert f"=s{i}" in legend
        # the 7th series reuses the first marker and still hits the canvas
        assert "*=s0" in legend and "*=s6" in legend
        rows = [l for l in out.splitlines() if l.startswith("|")]
        marked = sum(1 for row in rows if any(c != " " for c in row[1:-1]))
        assert marked >= 8

    def test_flat_series_does_not_crash(self):
        xs = np.linspace(0, 1, 10)
        out = ascii_plot({"flat": (xs, np.zeros_like(xs))})
        assert "flat" in out


class TestRenders:
    def test_render_region(self):
        ps = np.linspace(0.1, 3.0, 60)
        out = render_region(
            ps, {"EDF": 0.2 - 0.1 * ps, "RM": 0.1 - 0.1 * ps}, otot=0.05
        )
        assert "P (period)" in out and "Eq. (15)" in out

    def test_render_supply(self):
        out = render_supply(
            {
                "exact": PeriodicSlotSupply(4.0, 2.0),
                "linear": LinearSupply.from_slot(4.0, 2.0),
            },
            horizon=12.0,
        )
        assert "Z(t)" in out and "exact" in out
