"""Text table formatting tests."""

from repro.viz import format_table


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert len(set(len(l) for l in lines)) == 1  # equal widths

    def test_float_formatting(self):
        out = format_table(["x"], [[1.23456]])
        assert "1.235" in out

    def test_custom_float_format(self):
        out = format_table(["x"], [[1.23456]], float_fmt="{:.1f}")
        assert "1.2" in out

    def test_bools_and_none_rendered_as_str(self):
        out = format_table(["a", "b"], [[True, None]])
        assert "True" in out and "None" in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out

    def test_wide_cell_expands_column(self):
        out = format_table(["c"], [["averyverylongvalue"]])
        assert "averyverylongvalue" in out
