"""Primary/backup baseline tests."""

import pytest

from repro.baselines import (
    pb_partition,
    pb_schedulable,
    replicate_for_pb,
    simulate_pb_worst_case,
)
from repro.baselines.primary_backup import BACKUP_SUFFIX, PRIMARY_SUFFIX, _partner
from repro.model import Mode, Task, TaskSet
from repro.partition import PartitionError


class TestReplication:
    def test_critical_tasks_duplicated(self, paper_ts):
        rep = replicate_for_pb(paper_ts)
        # 5 NF singles + (4 FS + 4 FT) * 2 = 21 tasks.
        assert len(rep) == 21

    def test_replicas_renamed_and_remoded(self, paper_ts):
        rep = replicate_for_pb(paper_ts)
        assert "tau10.pri" in rep.names and "tau10.bak" in rep.names
        assert all(t.mode is Mode.NF for t in rep)

    def test_nf_tasks_untouched(self, paper_ts):
        rep = replicate_for_pb(paper_ts)
        assert "tau1" in rep.names

    def test_utilization_doubles_for_protected(self, paper_ts):
        rep = replicate_for_pb(paper_ts)
        protected_u = sum(
            t.utilization for t in paper_ts if t.mode is not Mode.NF
        )
        assert rep.utilization == pytest.approx(
            paper_ts.utilization + protected_u
        )

    def test_partner_mapping(self):
        assert _partner("x" + PRIMARY_SUFFIX) == "x" + BACKUP_SUFFIX
        assert _partner("x" + BACKUP_SUFFIX) == "x" + PRIMARY_SUFFIX
        assert _partner("plain") is None


class TestPlacement:
    def test_partners_on_disjoint_processors(self, paper_ts):
        rep = replicate_for_pb(paper_ts)
        bins = pb_partition(rep, 4)
        where = {}
        for idx, b in enumerate(bins):
            for t in b:
                where[t.name] = idx
        for name, idx in where.items():
            partner = _partner(name)
            if partner:
                assert where[partner] != idx, name

    def test_all_replicas_placed(self, paper_ts):
        rep = replicate_for_pb(paper_ts)
        bins = pb_partition(rep, 4)
        assert sum(len(b) for b in bins) == len(rep)

    def test_needs_two_processors(self, paper_ts):
        with pytest.raises(ValueError):
            pb_partition(replicate_for_pb(paper_ts), 1)

    def test_impossible_placement_raises(self):
        # Two heavy FT tasks -> 4 replicas of U=0.9: no 4-proc packing.
        ts = TaskSet(
            [
                Task("f1", 9, 10, mode=Mode.FT),
                Task("f2", 9, 10, mode=Mode.FT),
                Task("f3", 9, 10, mode=Mode.FT),
            ]
        )
        with pytest.raises(PartitionError):
            pb_partition(replicate_for_pb(ts), 4)


class TestAnalysisAndSim:
    def test_paper_set_pb_schedulable(self, paper_ts):
        pb = pb_schedulable(paper_ts)
        assert pb.schedulable
        assert pb.replication_overhead == pytest.approx(
            sum(t.utilization for t in paper_ts if t.mode is not Mode.NF)
        )

    def test_worst_case_sim_no_misses(self, paper_ts):
        pb = pb_schedulable(paper_ts)
        results = simulate_pb_worst_case(pb, horizon=120.0)
        assert sum(len(r.misses) for r in results) == 0

    def test_sim_on_unschedulable_rejected(self):
        ts = TaskSet(
            [
                Task("f1", 9, 10, mode=Mode.FT),
                Task("f2", 9, 10, mode=Mode.FT),
                Task("f3", 9, 10, mode=Mode.FT),
            ]
        )
        pb = pb_schedulable(ts)
        assert not pb.schedulable
        with pytest.raises(ValueError):
            simulate_pb_worst_case(pb, horizon=10.0)

    def test_pb_cheaper_than_flexible_in_bandwidth(self, paper_ts):
        # PB replication costs 2x protected utilization (~0.84), while the
        # lock-step scheme dedicates whole platform slots — the documented
        # bandwidth-vs-masking trade-off.
        pb = pb_schedulable(paper_ts)
        assert pb.replicated_utilization < 4.0  # fits parallel capacity
        assert pb.replication_overhead < 1.0
