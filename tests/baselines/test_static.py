"""Static-platform baseline tests: the paper's motivating comparison."""

import pytest

from repro.baselines import StaticKind, compare_with_flexible, evaluate_static
from repro.core import Overheads
from repro.model import Mode, Task, TaskSet


class TestEvaluateStatic:
    def test_all_ft_protects_everything(self, paper_ts):
        rep = evaluate_static(paper_ts, StaticKind.ALL_FT)
        assert rep.protection_ok
        assert rep.under_protected == ()

    def test_all_ft_cannot_schedule_paper_set(self, paper_ts):
        # U = 1.608 > 1 single processor.
        rep = evaluate_static(paper_ts, StaticKind.ALL_FT)
        assert not rep.schedulable
        assert not rep.acceptable

    def test_all_nf_schedules_but_underprotects(self, paper_ts):
        rep = evaluate_static(paper_ts, StaticKind.ALL_NF)
        assert rep.schedulable
        assert not rep.protection_ok
        assert set(rep.under_protected) == {
            "tau6", "tau7", "tau8", "tau9",  # FS tasks
            "tau10", "tau11", "tau12", "tau13",  # FT tasks
        }

    def test_all_fs_underprotects_only_ft(self, paper_ts):
        rep = evaluate_static(paper_ts, StaticKind.ALL_FS)
        assert set(rep.under_protected) == {"tau10", "tau11", "tau12", "tau13"}

    def test_capacity_per_kind(self, paper_ts):
        assert evaluate_static(paper_ts, StaticKind.ALL_FT).capacity == 1
        assert evaluate_static(paper_ts, StaticKind.ALL_FS).capacity == 2
        assert evaluate_static(paper_ts, StaticKind.ALL_NF).capacity == 4

    def test_small_ft_set_acceptable_on_all_ft(self):
        ts = TaskSet([Task("f", 1, 10, mode=Mode.FT)])
        rep = evaluate_static(ts, StaticKind.ALL_FT)
        assert rep.acceptable


class TestCompareWithFlexible:
    def test_paper_story(self, paper_ts):
        # No static design is acceptable; the flexible scheme is.
        out = compare_with_flexible(paper_ts, "EDF", Overheads.uniform(0.05))
        statics = [out[str(k)] for k in StaticKind]
        assert not any(r.acceptable for r in statics)
        flexible = out["flexible"]
        assert flexible.schedulable and flexible.protection_ok
        assert flexible.period == pytest.approx(2.966, abs=2e-3)

    def test_flexible_reports_failure_gracefully(self):
        # An impossible set: FT tasks alone exceed one processor.
        ts = TaskSet(
            [
                Task("f1", 6, 10, mode=Mode.FT),
                Task("f2", 6, 10, mode=Mode.FT),
            ]
        )
        out = compare_with_flexible(ts, "EDF")
        assert not out["flexible"].schedulable
        assert out["flexible"].detail

    def test_explicit_partition_forwarded(self, paper_ts, paper_part):
        out = compare_with_flexible(
            paper_ts, "EDF", Overheads.uniform(0.05), partition=paper_part
        )
        assert out["flexible"].schedulable
