"""Unit tests for the EDP / periodic-server resource models."""

import numpy as np
import pytest

from repro.supply import EDPSupply, PeriodicServerSupply, PeriodicSlotSupply
from repro.supply.algebra import dominates


class TestEDP:
    def test_blackout_formula(self):
        z = EDPSupply(period=10.0, budget=3.0, deadline=6.0)
        assert z.delta == pytest.approx(10.0 + 6.0 - 6.0)  # Π + D − 2Θ

    def test_zero_before_blackout(self):
        z = EDPSupply(10.0, 3.0, 6.0)
        assert z.supply(z.delta) == pytest.approx(0.0)
        assert z.supply(z.delta - 1.0) == 0.0

    def test_ramp_after_blackout(self):
        z = EDPSupply(10.0, 3.0, 6.0)
        assert z.supply(z.delta + 2.0) == pytest.approx(2.0)
        assert z.supply(z.delta + 3.0) == pytest.approx(3.0)

    def test_plateau_between_ramps(self):
        z = EDPSupply(10.0, 3.0, 6.0)
        assert z.supply(z.delta + 5.0) == pytest.approx(3.0)

    def test_second_ramp(self):
        z = EDPSupply(10.0, 3.0, 6.0)
        assert z.supply(z.delta + 10.0 + 1.0) == pytest.approx(4.0)

    def test_alpha(self):
        assert EDPSupply(10.0, 3.0, 6.0).alpha == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            EDPSupply(10.0, 7.0, 6.0)  # budget > deadline
        with pytest.raises(ValueError):
            EDPSupply(10.0, 3.0, 11.0)  # deadline > period

    def test_inverse_pseudo(self):
        z = EDPSupply(10.0, 3.0, 6.0)
        for w in np.linspace(0.1, 7.0, 30):
            t = z.inverse(float(w))
            assert z.supply(t) == pytest.approx(w, abs=1e-6)

    def test_zero_budget(self):
        z = EDPSupply(10.0, 0.0, 6.0)
        assert z.supply(100.0) == 0.0
        assert z.delta == float("inf")


class TestPeriodicServer:
    def test_is_edp_with_deadline_period(self):
        s = PeriodicServerSupply(8.0, 2.0)
        e = EDPSupply(8.0, 2.0, 8.0)
        ts = np.linspace(0, 40, 401)
        assert np.allclose(s.supply_array(ts), e.supply_array(ts))

    def test_shin_lee_blackout(self):
        s = PeriodicServerSupply(8.0, 2.0)
        assert s.delta == pytest.approx(2 * (8.0 - 2.0))

    def test_fixed_slot_dominates_floating_server(self):
        # Lemma 1 (static slot) has blackout P−Q; the floating server 2(P−Q).
        slot = PeriodicSlotSupply(8.0, 2.0)
        server = PeriodicServerSupply(8.0, 2.0)
        assert dominates(slot, server, horizon=80.0)
        # and strictly so somewhere:
        assert slot.supply(8.0) > server.supply(8.0)
