"""Unit tests for the trivial supplies."""

import numpy as np
import pytest

from repro.supply import DedicatedSupply, NullSupply


class TestDedicated:
    def test_identity(self):
        z = DedicatedSupply()
        assert z.supply(3.7) == 3.7

    def test_alpha_delta(self):
        z = DedicatedSupply()
        assert z.alpha == 1.0
        assert z.delta == 0.0

    def test_inverse_identity(self):
        assert DedicatedSupply().inverse(5.0) == 5.0

    def test_array(self):
        ts = np.array([0.0, 1.5, 9.0])
        assert np.allclose(DedicatedSupply().supply_array(ts), ts)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DedicatedSupply().supply(-0.1)


class TestNull:
    def test_always_zero(self):
        z = NullSupply()
        assert z.supply(1e9) == 0.0

    def test_alpha_zero_delta_inf(self):
        z = NullSupply()
        assert z.alpha == 0.0
        assert z.delta == float("inf")

    def test_not_feasible_budget(self):
        assert not NullSupply().is_feasible_budget()
        assert DedicatedSupply().is_feasible_budget()

    def test_inverse_raises(self):
        with pytest.raises(ValueError):
            NullSupply().inverse(1.0)
