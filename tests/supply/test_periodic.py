"""Unit tests for the exact Lemma-1 supply (PeriodicSlotSupply)."""

import numpy as np
import pytest

from repro.supply import PeriodicSlotSupply


@pytest.fixture
def z():
    return PeriodicSlotSupply(period=4.0, budget=1.5)


class TestLemma1Values:
    def test_zero_at_zero(self, z):
        assert z.supply(0.0) == 0.0

    def test_blackout_portion(self, z):
        # First supply only after P - Q = 2.5.
        assert z.supply(2.0) == 0.0
        assert z.supply(2.5) == pytest.approx(0.0)

    def test_ramp_portion(self, z):
        assert z.supply(3.0) == pytest.approx(0.5)
        assert z.supply(4.0 - 1e-9) == pytest.approx(1.5, abs=1e-6)

    def test_plateau_after_full_slot(self, z):
        # t in [4, 6.5): exactly one full slot seen.
        assert z.supply(4.0) == pytest.approx(1.5)
        assert z.supply(6.0) == pytest.approx(1.5)

    def test_second_cycle_ramp(self, z):
        assert z.supply(7.0) == pytest.approx(2.0)
        assert z.supply(8.0) == pytest.approx(3.0)

    def test_many_cycles_rate(self, z):
        # Z(kP) = k*Q exactly.
        for k in (1, 5, 20):
            assert z.supply(k * 4.0) == pytest.approx(k * 1.5)

    def test_lemma1_formula_directly(self, z):
        # Spot-check the branch structure of Eq. 1.
        import math

        for t in np.linspace(0, 30, 301):
            j = math.floor(t / 4.0 + 1e-9)
            if t < (j + 1) * 4.0 - 1.5 - 1e-9:
                expected = j * 1.5
            else:
                expected = t - (j + 1) * (4.0 - 1.5)
            assert z.supply(float(t)) == pytest.approx(expected, abs=1e-7), t


class TestParametersAndEdges:
    def test_alpha_delta(self, z):
        assert z.alpha == pytest.approx(1.5 / 4.0)
        assert z.delta == pytest.approx(2.5)

    def test_full_budget_is_dedicated(self):
        z = PeriodicSlotSupply(3.0, 3.0)
        for t in (0.0, 1.3, 7.9):
            assert z.supply(t) == pytest.approx(t)

    def test_zero_budget(self):
        z = PeriodicSlotSupply(3.0, 0.0)
        assert z.supply(100.0) == 0.0
        assert z.alpha == 0.0

    def test_budget_above_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicSlotSupply(3.0, 3.1)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicSlotSupply(0.0, 0.0)

    def test_negative_t_rejected(self, z):
        with pytest.raises(ValueError):
            z.supply(-1.0)

    def test_supply_array_matches_scalar(self, z):
        ts = np.linspace(0, 20, 401)
        arr = z.supply_array(ts)
        expected = [z.supply(float(t)) for t in ts]
        assert np.allclose(arr, expected)


class TestInverse:
    def test_inverse_zero(self, z):
        assert z.inverse(0.0) == 0.0

    def test_inverse_in_first_ramp(self, z):
        assert z.inverse(0.5) == pytest.approx(3.0)

    def test_inverse_full_budget_hits_period(self, z):
        assert z.inverse(1.5) == pytest.approx(4.0)

    def test_inverse_second_cycle(self, z):
        assert z.inverse(2.0) == pytest.approx(7.0)

    def test_inverse_is_true_pseudo_inverse(self, z):
        for w in np.linspace(0.01, 6.0, 50):
            t = z.inverse(float(w))
            assert z.supply(t) == pytest.approx(w, abs=1e-6)
            assert z.supply(t - 1e-4) < w

    def test_inverse_zero_budget_raises(self):
        with pytest.raises(ValueError):
            PeriodicSlotSupply(3.0, 0.0).inverse(0.5)
