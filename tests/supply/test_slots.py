"""Unit tests for arbitrary static slot layouts (future-work extension)."""

import numpy as np
import pytest

from repro.supply import PeriodicSlotSupply, SlotLayoutSupply
from repro.supply.slots import evenly_split_slots


class TestSingleWindowEquivalence:
    def test_matches_lemma1_anywhere_in_cycle(self):
        # A single fixed window of length Q anywhere in the cycle has the
        # same worst-case supply as Lemma 1.
        lemma = PeriodicSlotSupply(5.0, 2.0)
        for start in (0.0, 1.0, 2.5):
            layout = SlotLayoutSupply(5.0, [(start, start + 2.0)])
            ts = np.linspace(0, 25, 501)
            assert np.allclose(
                layout.supply_array(ts), lemma.supply_array(ts), atol=1e-7
            ), start


class TestLayoutBasics:
    def test_budget_and_alpha(self):
        z = SlotLayoutSupply(10.0, [(0, 2), (5, 6)])
        assert z.budget == pytest.approx(3.0)
        assert z.alpha == pytest.approx(0.3)

    def test_delta_is_largest_gap(self):
        z = SlotLayoutSupply(10.0, [(0, 2), (5, 6)])
        # gaps: [2,5) = 3 and [6, 10+0) = 4 -> delta = 4
        assert z.delta == pytest.approx(4.0)

    def test_windows_merged_and_sorted(self):
        z = SlotLayoutSupply(10.0, [(4, 6), (0, 2), (2, 3)])
        assert z.windows == ((0.0, 3.0), (4.0, 6.0))

    def test_degenerate_windows_dropped(self):
        z = SlotLayoutSupply(10.0, [(1, 1), (3, 4)])
        assert z.windows == ((3.0, 4.0),)

    def test_out_of_cycle_window_rejected(self):
        with pytest.raises(ValueError):
            SlotLayoutSupply(10.0, [(8, 11)])

    def test_empty_layout(self):
        z = SlotLayoutSupply(10.0, [])
        assert z.supply(100.0) == 0.0
        assert z.delta == float("inf")

    def test_full_cycle_is_dedicated(self):
        z = SlotLayoutSupply(10.0, [(0, 10)])
        for t in (0.0, 3.7, 12.0):
            assert z.supply(t) == pytest.approx(t)

    def test_supply_monotone_nondecreasing(self):
        z = SlotLayoutSupply(7.0, [(1, 2), (4, 5.5)])
        ts = np.linspace(0, 30, 601)
        vals = z.supply_array(ts)
        assert np.all(np.diff(vals) >= -1e-9)

    def test_supply_against_bruteforce_minimum(self):
        # Definition 1 checked directly: slide t0 over a dense grid.
        z = SlotLayoutSupply(6.0, [(1, 2), (3, 4.5)])

        def available(t0, t1):
            total, step = 0.0, 0.001
            xs = np.arange(t0, t1, step)
            rel = np.mod(xs, 6.0)
            inside = ((rel >= 1) & (rel < 2)) | ((rel >= 3) & (rel < 4.5))
            return inside.sum() * step

        for t in (0.5, 1.5, 3.0, 6.0, 7.25, 13.0):
            brute = min(available(t0, t0 + t) for t0 in np.linspace(0, 6, 61))
            assert z.supply(t) <= brute + 0.02, t  # Z is the guaranteed minimum


class TestEvenSplitting:
    def test_split_preserves_budget(self):
        z = evenly_split_slots(9.0, 3.0, 3)
        assert z.budget == pytest.approx(3.0)

    def test_split_shrinks_delay(self):
        whole = evenly_split_slots(9.0, 3.0, 1)
        split = evenly_split_slots(9.0, 3.0, 3)
        assert split.delta < whole.delta
        assert split.delta == pytest.approx(2.0)  # (P/k) - (Q/k) = 3 - 1

    def test_split_dominates_whole_slot(self):
        from repro.supply.algebra import dominates

        whole = evenly_split_slots(9.0, 3.0, 1)
        split = evenly_split_slots(9.0, 3.0, 3)
        assert dominates(split, whole, horizon=45.0)

    def test_wraparound_start(self):
        z = evenly_split_slots(8.0, 2.0, 2, start=7.5)
        assert z.budget == pytest.approx(2.0)

    def test_invalid_pieces(self):
        with pytest.raises(ValueError):
            evenly_split_slots(8.0, 2.0, 0)
