"""Unit tests for the linear (bounded-delay) supply of Eq. 3."""

import numpy as np
import pytest

from repro.supply import LinearSupply


class TestLinear:
    def test_zero_until_delta(self):
        z = LinearSupply(0.5, 2.0)
        assert z.supply(0.0) == 0.0
        assert z.supply(2.0) == 0.0

    def test_slope_after_delta(self):
        z = LinearSupply(0.5, 2.0)
        assert z.supply(4.0) == pytest.approx(1.0)

    def test_alpha_delta_properties(self):
        z = LinearSupply(0.25, 3.0)
        assert z.alpha == 0.25
        assert z.delta == 3.0

    def test_from_slot_eq2(self):
        # Eq. 2: alpha = Q/P, delta = P - Q.
        z = LinearSupply.from_slot(4.0, 1.5)
        assert z.alpha == pytest.approx(1.5 / 4.0)
        assert z.delta == pytest.approx(2.5)

    def test_from_slot_validates(self):
        with pytest.raises(ValueError):
            LinearSupply.from_slot(0.0, 0.0)
        with pytest.raises(ValueError):
            LinearSupply.from_slot(4.0, 5.0)

    def test_alpha_range_enforced(self):
        with pytest.raises(ValueError):
            LinearSupply(1.5, 0.0)
        with pytest.raises(ValueError):
            LinearSupply(-0.1, 0.0)

    def test_zero_alpha_never_supplies(self):
        z = LinearSupply(0.0, 0.0)
        assert z.supply(1e9) == 0.0
        assert z.delta == float("inf")

    def test_inverse_closed_form(self):
        z = LinearSupply(0.5, 2.0)
        assert z.inverse(1.0) == pytest.approx(4.0)
        assert z.inverse(0.0) == 0.0

    def test_inverse_zero_alpha_raises(self):
        with pytest.raises(ValueError):
            LinearSupply(0.0, 0.0).inverse(1.0)

    def test_supply_array(self):
        z = LinearSupply(0.5, 2.0)
        ts = np.array([0.0, 1.0, 2.0, 3.0, 6.0])
        assert np.allclose(z.supply_array(ts), [0, 0, 0, 0.5, 2.0])

    def test_dedicated_limit(self):
        z = LinearSupply(1.0, 0.0)
        assert z.supply(7.3) == pytest.approx(7.3)
