"""Unit tests for measured (empirical) supply functions."""

import numpy as np
import pytest

from repro.supply import MeasuredSupply, PeriodicSlotSupply, availability_to_supply


class TestMeasured:
    def test_total_available(self):
        m = MeasuredSupply([(0, 1), (3, 5)], horizon=10.0)
        assert m.total_available() == pytest.approx(3.0)

    def test_alpha(self):
        m = MeasuredSupply([(0, 5)], horizon=10.0)
        assert m.alpha == pytest.approx(0.5)

    def test_delta_includes_edges(self):
        m = MeasuredSupply([(4, 5)], horizon=10.0)
        assert m.delta == pytest.approx(5.0)  # trailing gap [5,10]

    def test_supply_zero_window(self):
        m = MeasuredSupply([(0, 2), (8, 10)], horizon=10.0)
        # A window of length 6 starting at 2 sees nothing... [2,8) = 0
        assert m.supply(6.0) == pytest.approx(0.0)

    def test_supply_beyond_horizon_rejected(self):
        m = MeasuredSupply([(0, 1)], horizon=10.0)
        with pytest.raises(ValueError):
            m.supply(11.0)

    def test_windows_merged(self):
        m = MeasuredSupply([(0, 1), (1, 2)], horizon=5.0)
        assert m.windows == [(0.0, 2.0)]

    def test_window_outside_horizon_rejected(self):
        with pytest.raises(ValueError):
            MeasuredSupply([(0, 11)], horizon=10.0)

    def test_empty_trace(self):
        m = MeasuredSupply([], horizon=5.0)
        assert m.supply(5.0) == 0.0
        assert m.delta == float("inf")

    def test_periodic_trace_dominates_analytic_guarantee(self):
        # A perfect periodic slot trace must lie at or above Lemma 1.
        P, Q, cycles = 4.0, 1.5, 10
        windows = [(k * P, k * P + Q) for k in range(cycles)]
        m = availability_to_supply(windows, horizon=cycles * P)
        z = PeriodicSlotSupply(P, Q)
        for t in np.linspace(0, cycles * P / 2, 100):
            assert m.supply(float(t)) >= z.supply(float(t)) - 1e-7

    def test_periodic_trace_matches_analytic_exactly_in_steady_state(self):
        P, Q, cycles = 4.0, 1.5, 10
        windows = [(k * P + (P - Q), (k + 1) * P) for k in range(cycles)]
        m = availability_to_supply(windows, horizon=cycles * P)
        z = PeriodicSlotSupply(P, Q)
        for t in np.linspace(0.0, 2 * P, 50):
            assert m.supply(float(t)) == pytest.approx(z.supply(float(t)), abs=1e-7)
