"""Unit tests for supply comparison helpers."""

import pytest

from repro.supply import (
    DedicatedSupply,
    LinearSupply,
    PeriodicSlotSupply,
    dominates,
    equivalent_on,
    linear_bound_of,
    NullSupply,
)


class TestDominates:
    def test_dedicated_dominates_everything(self):
        z = PeriodicSlotSupply(4.0, 2.0)
        assert dominates(DedicatedSupply(), z, horizon=40.0)

    def test_figure3_linear_bound_is_safe(self):
        # The core safety claim of Eq. 3 / Figure 3: Z' <= Z.
        for P, Q in [(4.0, 2.0), (3.0, 0.5), (10.0, 9.0)]:
            exact = PeriodicSlotSupply(P, Q)
            linear = LinearSupply.from_slot(P, Q)
            assert dominates(exact, linear, horizon=10 * P), (P, Q)

    def test_not_dominates_when_crossing(self):
        a = LinearSupply(0.9, 3.0)
        b = LinearSupply(0.5, 0.0)
        assert not dominates(a, b, horizon=10.0)
        assert not dominates(b, a, horizon=100.0)

    def test_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            dominates(DedicatedSupply(), NullSupply(), horizon=0.0)


class TestEquivalentOn:
    def test_self_equivalence(self):
        z = PeriodicSlotSupply(4.0, 2.0)
        assert equivalent_on(z, PeriodicSlotSupply(4.0, 2.0), horizon=40.0)

    def test_distinct_not_equivalent(self):
        assert not equivalent_on(
            PeriodicSlotSupply(4.0, 2.0), PeriodicSlotSupply(4.0, 2.5), 40.0
        )


class TestLinearBoundOf:
    def test_of_periodic_matches_eq3(self):
        z = PeriodicSlotSupply(4.0, 1.5)
        lb = linear_bound_of(z)
        assert lb.alpha == pytest.approx(1.5 / 4.0)
        assert lb.delta == pytest.approx(2.5)

    def test_of_null_is_zero(self):
        lb = linear_bound_of(NullSupply())
        assert lb.alpha == 0.0

    def test_bound_touches_exact_at_ramp_starts(self):
        # Z'((j+1)P - Q) = jQ = Z at those corners (tightness of Eq. 3).
        z = PeriodicSlotSupply(4.0, 1.5)
        lb = linear_bound_of(z)
        for j in range(4):
            t = (j + 1) * 4.0 - 1.5
            assert lb.supply(t) == pytest.approx(z.supply(t), abs=1e-9)
