"""Query-layer tests: validation, typed queries, identity, caching.

The layer's whole value is the shared-bytes contract — campaign, merge
and the HTTP server must render one snapshot identically — plus refusal
of snapshots a preset did not build, and tolerance (warn, not refuse) of
snapshots from a newer minor schema revision.
"""

import json
import warnings

import pytest

from repro.reporting import QueryCache, QueryError, SnapshotQuery, render_summary
from repro.runner import (
    SnapshotCompatWarning,
    get_preset,
    save_snapshot,
    stream_campaign,
)

SCHED_AXES = {"u_total": [0.5, 1.0], "n": [4], "rep": [0, 1]}


@pytest.fixture(scope="module")
def sched_run():
    preset = get_preset("sched")
    aggregator = preset.aggregator()
    stream_campaign(preset.specs(SCHED_AXES), aggregator, workers=1)
    return preset, aggregator


@pytest.fixture()
def sched_snapshot(sched_run, tmp_path):
    _preset, aggregator = sched_run
    path = tmp_path / "sched.json"
    save_snapshot(path, aggregator, 0, {"d" * 64})
    return json.loads(path.read_text()), path


class TestValidation:
    def test_from_snapshot_roundtrip(self, sched_run, sched_snapshot):
        _preset, aggregator = sched_run
        snap, _path = sched_snapshot
        query = SnapshotQuery.from_snapshot(snap, "sched")
        assert query.aggregator.state_dict() == aggregator.state_dict()

    def test_from_file(self, sched_snapshot):
        _snap, path = sched_snapshot
        query = SnapshotQuery.from_file(path, "sched")
        assert query.preset.name == "sched"

    def test_wrong_preset_refused_with_merge_message(self, sched_snapshot):
        snap, _path = sched_snapshot
        with pytest.raises(
            QueryError,
            match=(
                r"snapshots were not built by the 'weighted' preset's "
                r"aggregate \(config digest mismatch\)"
            ),
        ):
            SnapshotQuery.from_snapshot(snap, "weighted")

    def test_wrong_major_schema_refused(self, sched_snapshot):
        snap, _path = sched_snapshot
        snap = {**snap, "schema": 99}
        with pytest.raises(QueryError, match="has schema 99"):
            SnapshotQuery.from_snapshot(snap, "sched")

    def test_newer_minor_schema_warns_and_proceeds(self, sched_snapshot):
        snap, _path = sched_snapshot
        snap = {**snap, "schema_minor": 7}
        with pytest.warns(SnapshotCompatWarning, match="schema minor 7"):
            query = SnapshotQuery.from_snapshot(snap, "sched")
        assert query.summary()

    def test_unknown_top_level_keys_warn_and_proceed(self, sched_snapshot):
        snap, _path = sched_snapshot
        snap = {**snap, "future_extension": {"x": 1}}
        with pytest.warns(SnapshotCompatWarning, match="future_extension"):
            query = SnapshotQuery.from_snapshot(snap, "sched")
        assert query.summary()

    def test_malformed_aggregate_refused(self, sched_snapshot):
        snap, _path = sched_snapshot
        snap = {**snap, "aggregate": {"bogus": {"kind": "mean"}}}
        with pytest.raises(QueryError, match="malformed aggregate state"):
            SnapshotQuery.from_snapshot(snap, "sched")

    def test_non_object_snapshot_refused(self):
        with pytest.raises(QueryError, match="not a snapshot object"):
            SnapshotQuery.from_snapshot([1, 2], "sched")

    def test_unreadable_file_refused(self, tmp_path):
        with pytest.raises(QueryError, match="cannot read snapshot"):
            SnapshotQuery.from_file(tmp_path / "missing.json", "sched")
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(QueryError, match="not valid JSON"):
            SnapshotQuery.from_file(bad, "sched")


class TestQueries:
    def test_metrics(self, sched_run):
        preset, aggregator = sched_run
        query = SnapshotQuery.from_aggregator(preset, aggregator)
        assert query.metrics() == [
            {"name": "acceptance_partitioned", "kind": "curve"},
            {"name": "acceptance_feasible", "kind": "curve"},
            {"name": "weighted_feasible", "kind": "curve"},
        ]

    def test_curve_pair_keys_become_axis_mappings(self, sched_run):
        query = SnapshotQuery.from_aggregator(*sched_run)
        curve = query.curve("acceptance_feasible")
        assert curve["metric"] == "acceptance_feasible"
        keys = [pt["key"] for pt in curve["points"]]
        assert keys == [
            {"n": 4, "u_total": 0.5},
            {"n": 4, "u_total": 1.0},
        ]
        for pt in curve["points"]:
            assert set(pt["value"]) == {"count", "sum", "mean"}

    def test_curve_pivot_over_axis(self, sched_run):
        query = SnapshotQuery.from_aggregator(*sched_run)
        curve = query.curve("acceptance_feasible", axis="u_total")
        assert curve["axis"] == "u_total"
        (series,) = curve["series"]
        assert series["key"] == {"n": 4}
        assert [x for x, _v in series["points"]] == [0.5, 1.0]

    def test_curve_unknown_axis_refused(self, sched_run):
        query = SnapshotQuery.from_aggregator(*sched_run)
        with pytest.raises(QueryError, match="has no axis 'nope'"):
            query.curve("acceptance_feasible", axis="nope")

    def test_curve_unknown_metric_refused(self, sched_run):
        query = SnapshotQuery.from_aggregator(*sched_run)
        with pytest.raises(QueryError, match="unknown metric 'nope'"):
            query.curve("nope")

    def test_curve_on_non_curve_metric_refused(self):
        preset = get_preset("weighted")
        query = SnapshotQuery.from_aggregator(preset, preset.aggregator())
        with pytest.raises(QueryError, match="not a curve"):
            query.curve("feasible_ratio")

    def test_curve_positional_keys_use_declared_axes(self):
        preset = get_preset("weighted")
        aggregator = preset.aggregator()
        aggregator["weighted_feasible"].fold([0.8, 8, 720.0], 1.0, weight=0.8)
        query = SnapshotQuery.from_aggregator(preset, aggregator)
        curve = query.curve("weighted_feasible")
        assert curve["points"][0]["key"] == {
            "u_total": 0.8,
            "n": 8,
            "period_hyperperiod": 720.0,
        }

    def test_categorical_curve_taxonomy_with_wilson_ci(self):
        preset = get_preset("faultspace")
        aggregator = preset.aggregator()
        acc = aggregator["outcomes"]
        acc.fold(["poisson", 0.05], {"masked": 8, "ft_miss": 2})
        query = SnapshotQuery.from_aggregator(preset, aggregator)
        result = query.categorical("outcomes")
        (bin_,) = result["bins"]
        assert bin_["key"] == {"scenario": "poisson", "rate": 0.05}
        tax = bin_["taxonomy"]
        assert tax["total"] == 10
        assert tax["categories"]["masked"]["count"] == 8
        assert tax["categories"]["masked"]["rate"] == 0.8
        lo, hi = tax["categories"]["masked"]["ci95"]
        assert lo < 0.8 < hi

    def test_categorical_on_numeric_metric_refused(self, sched_run):
        query = SnapshotQuery.from_aggregator(*sched_run)
        with pytest.raises(QueryError, match="not categorical"):
            query.categorical("acceptance_feasible")

    def test_summary_matches_aggregator(self, sched_run):
        _preset, aggregator = sched_run
        query = SnapshotQuery.from_aggregator("sched", aggregator)
        assert query.summary() == aggregator.summary()

    def test_query_dispatch(self, sched_run):
        query = SnapshotQuery.from_aggregator(*sched_run)
        assert query.query("summary") == query.summary()
        assert query.query("report") == query.report()
        assert query.query("metrics") == query.metrics()
        assert query.query("curve", metric="acceptance_feasible") == (
            query.curve("acceptance_feasible")
        )
        with pytest.raises(QueryError, match="needs a 'metric'"):
            query.query("curve")
        with pytest.raises(QueryError, match="unknown query kind"):
            query.query("plot")


class TestReport:
    def test_report_matches_preset_renderer(self, sched_run):
        preset, aggregator = sched_run
        query = SnapshotQuery.from_aggregator(preset, aggregator)
        assert query.report() == preset.render(aggregator)
        assert query.report().startswith("acceptance ratios (over reps):")

    def test_row_rendered_preset_falls_back_to_summary(self):
        preset = get_preset("faults")
        aggregator = preset.aggregator()
        query = SnapshotQuery.from_aggregator(preset, aggregator)
        report = query.report()
        assert report == render_summary(aggregator)
        assert report.splitlines()[0] == "aggregate summary:"
        assert any(
            line.strip().startswith("coverage =")
            for line in report.splitlines()
        )


class TestContentDigest:
    def test_digest_is_state_addressed(self, sched_run):
        preset, aggregator = sched_run
        a = SnapshotQuery.from_aggregator(preset, aggregator).content_digest
        # same state loaded a second way -> same digest
        twin = preset.aggregator()
        twin.load_state(aggregator.state_dict())
        b = SnapshotQuery.from_aggregator(preset, twin).content_digest
        assert a == b
        # empty state -> different digest
        c = SnapshotQuery.from_aggregator(
            preset, preset.aggregator()
        ).content_digest
        assert a != c


class TestQueryCache:
    def test_hit_miss_accounting(self):
        cache = QueryCache()
        key = QueryCache.key("d" * 64, "curve", metric="m", axis=None)
        assert cache.get(key) is None
        cache.put(key, b"body")
        assert cache.get(key) == b"body"
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_none_params_do_not_split_keys(self):
        a = QueryCache.key("d" * 64, "curve", metric="m", axis=None)
        b = QueryCache.key("d" * 64, "curve", metric="m")
        assert a == b

    def test_bounded_entries(self):
        cache = QueryCache(max_entries=2)
        for i in range(4):
            cache.put((f"{i}", "q"), b"x")
        assert cache.stats()["entries"] == 2
