"""End-to-end tests for ``repro serve`` over real sockets.

These drive the acceptance contract of the HTTP layer: many concurrent
clients can stream sequenced deltas from one in-flight campaign and all
see the identical event log; the rendered report and snapshot bytes the
server hands out are byte-identical to what the CLI produces for the
same campaign; and a repeated identical query is answered from the
content-addressed cache (``X-Cache: hit``) without recomputation.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.server import ReproServer

# The smoke campaign every test shares: tiny but multi-point, so delta
# events actually interleave with client polling.
SCHED_JOB = {
    "preset": "sched",
    "axes": {"u_total": [0.5, 1.0], "n": [4], "rep": [0, 1]},
    "workers": 1,
}
SCHED_CLI_AXES = ["--axis", "u_total=0.5,1.0", "--axis", "n=4",
                  "--axis", "rep=0,1"]


# -- plain-stdlib HTTP helpers -------------------------------------------


def _request(port, path, *, method="GET", body=None):
    url = f"http://127.0.0.1:{port}{path}"
    data = None
    if body is not None:
        data = body if isinstance(body, bytes) else json.dumps(body).encode()
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def _get_json(port, path):
    status, headers, body = _request(port, path)
    return status, headers, json.loads(body)


def _stream_events(port, job_id, since=0):
    """Read one delta stream to EOF; returns the decoded event list."""
    url = f"http://127.0.0.1:{port}/jobs/{job_id}/deltas?since={since}"
    with urllib.request.urlopen(url, timeout=60) as resp:
        assert resp.headers.get("Transfer-Encoding") == "chunked"
        return [json.loads(line) for line in resp if line.strip()]


# -- fixtures ------------------------------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    spool = tmp_path_factory.mktemp("spool")
    srv = ReproServer(workers=1, spool_dir=spool)
    host, port, stop = srv.start_in_thread()
    yield {"server": srv, "port": port, "spool": spool}
    stop()


@pytest.fixture(scope="module")
def done_job(server):
    """The shared smoke job, submitted once and drained to completion."""
    port = server["port"]
    status, _headers, body = _request(port, "/jobs", method="POST",
                                      body=SCHED_JOB)
    assert status == 202
    submitted = json.loads(body)
    assert submitted["reused"] is False
    job_id = submitted["job"]
    events = _stream_events(port, job_id)
    assert events[-1]["type"] == "complete"
    return {"id": job_id, "events": events}


# -- service surface -----------------------------------------------------


class TestSurface:
    def test_index_lists_endpoints_and_presets(self, server):
        status, _h, body = _get_json(server["port"], "/")
        assert status == 200
        assert body["service"] == "repro serve"
        assert "sched" in body["presets"]
        assert "GET /jobs/{id}/deltas?since=N" in body["endpoints"]

    def test_presets_mirror_registry_capabilities(self, server):
        from repro.runner.presets import get_preset, preset_names

        _s, _h, body = _get_json(server["port"], "/presets")
        records = {r["name"]: r for r in body["presets"]}
        assert tuple(records) == preset_names()
        for name, record in records.items():
            preset = get_preset(name)
            assert record["adaptive"] == preset.adaptive
            assert record["axis_overridable"] == preset.axis_overridable
            assert record["scenario_axis"] == preset.scenario_axis
            assert record["row_rendered"] == preset.row_rendered

    def test_unknown_endpoint_404(self, server):
        status, _h, body = _request(server["port"], "/nope")
        assert status == 404
        assert b"no such endpoint" in body

    def test_wrong_method_405(self, server):
        status, _h, _b = _request(server["port"], "/presets", method="POST",
                                  body={})
        assert status == 405

    def test_bad_submit_400(self, server):
        for payload, fragment in [
            ({"preset": "nope"}, b"unknown preset"),
            ({"preset": "sched", "bogus": 1}, b"unknown job field"),
            ({"preset": "table2", "axes": {"x": [1]}}, b"--axis only applies"),
            ({"preset": "sched", "strategy": "adaptive"},
             b"--strategy adaptive supports"),
            ([], b"must be a JSON object"),
        ]:
            status, _h, body = _request(server["port"], "/jobs",
                                        method="POST", body=payload)
            assert status == 400, payload
            assert fragment in body


# -- job lifecycle -------------------------------------------------------


class TestJobLifecycle:
    def test_event_log_shape(self, done_job):
        events = done_job["events"]
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert events[0] == {"seq": 0, "type": "state", "state": "queued"}
        assert events[1] == {"seq": 1, "type": "state", "state": "running"}
        deltas = [e for e in events if e["type"] == "delta"]
        assert deltas, "campaign emitted no progress deltas"
        assert deltas[-1]["folded"] == 4
        assert events[-1]["stats"]["folded"] == 4

    def test_describe_done_job(self, server, done_job):
        status, _h, body = _get_json(server["port"], f"/jobs/{done_job['id']}")
        assert status == 200
        assert body["state"] == "done"
        assert body["preset"] == "sched"
        assert body["stats"]["computed"] == 4
        # unambiguous id prefixes resolve too (spool files use 16 chars)
        status, _h, by_prefix = _get_json(
            server["port"], f"/jobs/{done_job['id'][:16]}"
        )
        assert status == 200 and by_prefix["job"] == done_job["id"]

    def test_replay_from_any_seq(self, server, done_job):
        port, job_id = server["port"], done_job["id"]
        assert _stream_events(port, job_id) == done_job["events"]
        tail = _stream_events(port, job_id, since=2)
        assert tail == done_job["events"][2:]
        # since past the terminal event: clean EOF, not a hang
        beyond = len(done_job["events"]) + 5
        assert _stream_events(port, job_id, since=beyond) == []

    def test_resubmit_is_deduped(self, server, done_job):
        status, _h, body = _request(server["port"], "/jobs", method="POST",
                                    body=SCHED_JOB)
        assert status == 200
        reply = json.loads(body)
        assert reply == {"job": done_job["id"], "reused": True,
                         "state": "done"}
        # workers is not part of the identity: same campaign, same job
        other = dict(SCHED_JOB, workers=2)
        _s, _h, body = _request(server["port"], "/jobs", method="POST",
                                body=other)
        assert json.loads(body)["job"] == done_job["id"]

    def test_unknown_job_404(self, server):
        status, _h, body = _request(server["port"], "/jobs/feed")
        assert status == 404
        assert b"no such job" in body


# -- the acceptance criteria ---------------------------------------------


class TestConcurrentStreams:
    def test_eight_concurrent_clients_see_identical_logs(self, server):
        """≥ 8 clients stream deltas from ONE in-flight campaign; every
        client replays the identical sequenced event log to EOF."""
        port = server["port"]
        job = dict(SCHED_JOB, seed=7,
                   axes={"u_total": [0.5, 0.7, 0.9, 1.0], "n": [4, 8],
                         "rep": [0, 1, 2]})
        status, _h, body = _request(port, "/jobs", method="POST", body=job)
        assert status == 202
        job_id = json.loads(body)["job"]

        results = [None] * 8
        errors = []

        def client(i):
            try:
                results[i] = _stream_events(port, job_id)
            except Exception as exc:  # noqa: BLE001 - surfaced via errors
                errors.append((i, exc))

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert all(r is not None for r in results)
        first = results[0]
        assert first[-1]["type"] == "complete"
        assert first[-1]["stats"]["folded"] == 24
        for other in results[1:]:
            assert other == first


class TestQueryCache:
    def test_repeated_query_is_a_cache_hit_with_identical_bytes(
        self, server, done_job
    ):
        port, job_id = server["port"], done_job["id"]
        path = (f"/jobs/{job_id}/query/curve"
                f"?metric=acceptance_feasible&axis=u_total")
        _s, h1, b1 = _request(port, path)
        _s, h2, b2 = _request(port, path)
        assert h1["X-Cache"] == "miss"
        assert h2["X-Cache"] == "hit"
        assert b1 == b2
        curve = json.loads(b1)
        assert curve["axis"] == "u_total"

    def test_report_cached_too(self, server, done_job):
        port, job_id = server["port"], done_job["id"]
        _s, h1, b1 = _request(port, f"/jobs/{job_id}/report")
        _s, h2, b2 = _request(port, f"/jobs/{job_id}/report")
        assert (h1["X-Cache"], h2["X-Cache"]) == ("miss", "hit")
        assert b1 == b2
        assert h2["Content-Type"].startswith("text/plain")

    def test_cache_stats_account_hits(self, server, done_job):
        _s, _h, stats = _get_json(server["port"], "/stats")
        assert stats["query_cache"]["hits"] >= 2
        assert stats["jobs"]["total"] >= 1

    def test_bad_query_params(self, server, done_job):
        port, job_id = server["port"], done_job["id"]
        status, _h, body = _request(port, f"/jobs/{job_id}/query/plot")
        assert status == 404 and b"unknown query kind" in body
        status, _h, body = _request(port, f"/jobs/{job_id}/query/curve")
        assert status == 400 and b"needs a 'metric'" in body
        status, _h, body = _request(
            port, f"/jobs/{job_id}/query/curve?metric=nope"
        )
        assert status == 400 and b"unknown metric" in body


class TestCliByteIdentity:
    """The server and the CLI must render one campaign identically."""

    def test_snapshot_bytes_match_cli_state_file(
        self, server, done_job, tmp_path, capsys
    ):
        status, _h, http_snap = _request(
            server["port"], f"/jobs/{done_job['id']}/snapshot"
        )
        assert status == 200
        state = tmp_path / "cli-state.json"
        rc = main(["campaign", "sched", *SCHED_CLI_AXES, "--workers", "1",
                   "--state", str(state), "--no-progress"])
        assert rc == 0
        capsys.readouterr()
        assert http_snap == state.read_bytes()

    def test_report_bytes_match_cli_merge_render(
        self, server, done_job, tmp_path, capsys
    ):
        port, job_id = server["port"], done_job["id"]
        _s, _h, http_report = _request(port, f"/jobs/{job_id}/report")
        snap = tmp_path / "snap.json"
        snap.write_bytes(_request(port, f"/jobs/{job_id}/snapshot")[2])
        rc = main(["merge", str(snap), "--preset", "sched",
                   "--out", str(tmp_path / "merged.json")])
        assert rc == 0
        # the merge summary goes to stderr; stdout is exactly the report
        assert http_report.decode() == capsys.readouterr().out


class TestUploadedSnapshots:
    def test_upload_query_and_dedupe(self, server, done_job):
        port = server["port"]
        snap = _request(port, f"/jobs/{done_job['id']}/snapshot")[2]
        status, _h, body = _request(
            port, "/snapshots?preset=sched", method="POST", body=snap
        )
        assert status == 202
        digest = json.loads(body)["snapshot"]
        # same rendered report as the job it came from
        _s, _h, report = _request(port, f"/snapshots/{digest}/report")
        assert report == _request(port, f"/jobs/{done_job['id']}/report")[2]
        # re-upload is recognized by content digest
        status, _h, body = _request(
            port, "/snapshots?preset=sched", method="POST", body=snap
        )
        assert status == 200 and json.loads(body)["reused"] is True

    def test_upload_validation(self, server, done_job):
        port = server["port"]
        snap = _request(port, f"/jobs/{done_job['id']}/snapshot")[2]
        status, _h, body = _request(port, "/snapshots", method="POST",
                                    body=snap)
        assert status == 400 and b"needs ?preset=" in body
        status, _h, body = _request(
            port, "/snapshots?preset=weighted", method="POST", body=snap
        )
        assert status == 400 and b"config digest mismatch" in body
        status, _h, body = _request(port, "/snapshots/feed/report")
        assert status == 404 and b"no such snapshot" in body


# -- telemetry + observability -------------------------------------------


class TestTelemetryEndpoints:
    def test_job_telemetry_is_a_run_manifest(self, server, done_job):
        status, _h, manifest = _get_json(
            server["port"], f"/jobs/{done_job['id']}/telemetry"
        )
        assert status == 200
        assert manifest["state"] == "done"
        assert manifest["config"]["job"] == done_job["id"]
        assert manifest["config"]["preset"] == "sched"
        assert manifest["stats"]["folded"] == 4
        # the engine phases recorded on the job thread show up
        assert "campaign" in manifest["phases"]
        assert manifest["counters"]["engine.points"] >= 4
        assert manifest["wall_seconds"] > 0.0

    def test_metrics_aggregates_jobs_and_requests(self, server, done_job):
        port = server["port"]
        status, _h, metrics = _get_json(port, "/metrics")
        assert status == 200
        assert metrics["uptime_seconds"] > 0.0
        assert metrics["jobs"]["by_state"].get("done", 0) >= 1
        assert metrics["telemetry"]["jobs"] >= 1
        assert metrics["telemetry"]["counters"]["engine.points"] >= 4
        requests = metrics["requests"]
        assert requests["total"] >= 1
        assert requests["by_route"].get("/jobs", 0) >= 1
        # this very request is counted on the next read
        _s, _h, again = _get_json(port, "/metrics")
        assert again["requests"]["total"] > requests["total"]
        assert again["requests"]["by_status"].get("200", 0) > 0

    def test_metrics_rejects_non_get(self, server):
        status, _h, _b = _request(
            server["port"], "/metrics", method="POST", body={}
        )
        assert status == 405


class TestAccessLog:
    def test_requests_land_as_ndjson_records(self):
        import io

        log = io.StringIO()
        srv = ReproServer(workers=1, access_log=log)
        _host, port, stop = srv.start_in_thread()
        try:
            _request(port, "/presets")
            _request(port, "/nope")
            status, _h, body = _request(port, "/jobs", method="POST",
                                        body=SCHED_JOB)
            job_id = json.loads(body)["job"]
            _request(port, f"/jobs/{job_id}")
        finally:
            stop()
        records = [json.loads(l) for l in log.getvalue().splitlines()]
        assert len(records) == 4
        by_path = {r["path"]: r for r in records}
        assert by_path["/presets"]["status"] == 200
        assert by_path["/presets"]["method"] == "GET"
        assert by_path["/nope"]["status"] == 404
        assert by_path["/jobs"]["method"] == "POST"
        assert all(r["duration_ms"] >= 0.0 for r in records)
        # job-scoped requests carry the job digest; others don't
        assert by_path[f"/jobs/{job_id}"]["job"] == job_id
        assert "job" not in by_path["/presets"]

    def test_no_access_log_by_default(self, server, done_job):
        # the module fixture's server has none; just assert the attribute
        assert server["server"]._access_log is None


class TestJobFailureRecorded:
    def test_failed_job_lands_in_record_not_just_process_log(self, server):
        """A campaign that raises must yield state=failed + the error in
        the job record (and the event log), never a stuck 'running'."""
        port = server["port"]
        # ci_width without the adaptive strategy is rejected at submit;
        # to fail *during* run, use a preset point that raises: sched with
        # an axis value outside the validated domain.
        bad = {
            "preset": "sched",
            "axes": {"u_total": [0.5], "n": [0], "rep": [0]},
            "workers": 1,
        }
        status, _h, body = _request(port, "/jobs", method="POST", body=bad)
        if status != 202:
            pytest.skip("submit-time validation caught it first")
        job_id = json.loads(body)["job"]
        events = _stream_events(port, job_id)
        assert events[-1]["type"] == "failed"
        _s, _h, record = _get_json(port, f"/jobs/{job_id}")
        assert record["state"] == "failed"
        assert record["error"]
        # a failed job still serves its telemetry manifest, error included
        _s, _h, manifest = _get_json(port, f"/jobs/{job_id}/telemetry")
        assert manifest["state"] == "failed"
        assert manifest["error"] == record["error"]
