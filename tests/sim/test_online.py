"""Online-engine tests: live admission, departures, failure re-assignment.

Built on the paper platform (4 cores, paper partition) with the max-slack
EDF design — the deployment Section 4 motivates for dynamic scenarios.
Killing core 2 on this platform is the canonical failure: the FS couple
(2,3) loses lock-step (orphaning ``tau9``), the NF singleton on core 2
dies (orphaning ``tau4``), and the 4-wide FT voting channel survives with
3 live members.
"""

import dataclasses
import math

import pytest

from repro.core import Overheads, design_platform
from repro.experiments.paper import paper_partition
from repro.faults.model import Fault
from repro.model import Mode, Task
from repro.sim import OnlineArrival, OnlineSim


@pytest.fixture(scope="module")
def platform():
    part = paper_partition()
    config = design_platform(part, "EDF", Overheads.uniform(0.05), "max-slack")
    return config, part


def make_sim(platform, slack=None):
    config, part = platform
    if slack is not None:
        config = dataclasses.replace(config, slack=slack)
    return config, OnlineSim(config, part)


def tiny_task(name="dyn", mode=Mode.NF):
    return Task(name, 0.05, 20.0, mode=mode)


def growing_task(name="grow"):
    # Heavy enough that admission must grow the NF quantum out of the
    # reserve (the paper design's spare NF quantum absorbs small tasks).
    return Task(name, 2.0, 20.0, mode=Mode.NF)


class TestArrivals:
    def test_empty_run_is_a_no_op(self, platform):
        config, sim = make_sim(platform)
        result = sim.run(10.0)
        assert result.offered == 0 and result.admitted == 0
        assert result.acceptance_ratio is None
        assert result.slack_final == config.slack

    def test_small_task_admitted_and_binned(self, platform):
        config, sim = make_sim(platform)
        result = sim.run(
            30.0, arrivals=[OnlineArrival(3.0, tiny_task())]
        )
        assert result.offered == 1 and result.admitted == 1
        b = int(3.0 // config.period)
        assert result.acceptance_bins == {b: [1, 1]}
        assert result.slack_final <= config.slack

    def test_bin_width_override(self, platform):
        _config, sim = make_sim(platform)
        result = sim.run(
            30.0, arrivals=[OnlineArrival(7.0, tiny_task())], bin_width=2.0
        )
        assert result.acceptance_bins == {3: [1, 1]}

    def test_oversized_task_rejected_with_reason(self, platform):
        _config, sim = make_sim(platform)
        hog = Task("hog", 15.0, 20.0, mode=Mode.NF)
        result = sim.run(30.0, arrivals=[OnlineArrival(1.0, hog)])
        assert result.offered == 1 and result.admitted == 0
        (time, name, admitted, reason) = result.decisions[0]
        assert (time, name, admitted) == (1.0, "hog", False)
        assert "slack" in reason

    def test_departure_reclaims_the_reserve(self, platform):
        config, sim = make_sim(platform)
        result = sim.run(
            30.0,
            arrivals=[OnlineArrival(2.0, growing_task(), lifetime=5.0)],
        )
        assert result.departed == 1
        assert result.slack_final == pytest.approx(config.slack)

    def test_departure_past_horizon_never_fires(self, platform):
        config, sim = make_sim(platform)
        result = sim.run(
            30.0,
            arrivals=[OnlineArrival(2.0, growing_task(), lifetime=100.0)],
        )
        assert result.departed == 0
        assert result.slack_final < config.slack


class TestCoreDeath:
    def test_death_orphans_fs_couple_and_nf_singleton(self, platform):
        _config, sim = make_sim(platform)
        result = sim.run(60.0, core_deaths=[(10.0, 2)])
        assert result.deaths == [(10.0, 2)]
        assert result.orphaned == 2  # tau9 (FS couple 2-3) + tau4 (NF)
        # every orphan resolves one way or the other
        assert len(result.reassign_latencies) + len(result.lost) == 2
        assert len(result.miss_windows) == 2
        dead = sim.admission.dead_processors
        assert (Mode.FS, 1) in dead and (Mode.NF, 2) in dead
        assert (Mode.FT, 0) not in dead  # 4-wide voting survives 1 death

    def test_reassignment_with_generous_reserve(self, platform):
        config, sim = make_sim(platform, slack=5.0)
        result = sim.run(60.0, core_deaths=[(10.0, 2)])
        assert result.lost == []
        assert len(result.reassign_latencies) == 2
        # One attempt per major-cycle boundary, in eviction order.
        boundary = (math.floor(10.0 / config.period) + 1) * config.period
        assert result.reassign_latencies[0] == pytest.approx(boundary - 10.0)
        assert result.reassign_latencies[1] == pytest.approx(
            boundary - 10.0 + config.period
        )
        assert result.miss_windows == result.reassign_latencies

    def test_lost_orphans_miss_to_the_horizon(self, platform):
        _config, sim = make_sim(platform)  # paper slack: too thin to rescue
        result = sim.run(60.0, core_deaths=[(10.0, 2)])
        assert sorted(result.lost) == result.lost
        for name, window in zip(result.lost, result.miss_windows):
            assert window == pytest.approx(50.0)
        # a processor-less task misses one job per elapsed period
        assert result.post_failure_misses == sum(
            int(50.0 // task.period)
            for task in [
                t
                for t in paper_partition().all_tasks()
                if t.name in result.lost
            ]
        )

    def test_double_death_is_idempotent(self, platform):
        _config, sim = make_sim(platform)
        result = sim.run(60.0, core_deaths=[(10.0, 2), (20.0, 2)])
        assert result.deaths == [(10.0, 2)]
        assert result.orphaned == 2

    def test_dead_bin_refuses_explicit_admission(self, platform):
        _config, sim = make_sim(platform)
        sim.run(60.0, core_deaths=[(10.0, 2)])
        decision = sim.admission.try_admit(tiny_task("late"), processor=2)
        assert not decision.admitted
        assert "failed permanently" in decision.reason

    def test_invalid_core_rejected(self, platform):
        _config, sim = make_sim(platform)
        with pytest.raises(ValueError, match="outside the platform's cores"):
            sim.run(60.0, core_deaths=[(10.0, 7)])

    def test_every_orphan_resolves_exactly_once(self, platform):
        # Orphans resolve by re-assignment, loss, or their own departure —
        # each exactly once, each with exactly one miss window.
        _config, sim = make_sim(platform, slack=5.0)
        result = sim.run(
            60.0,
            arrivals=[OnlineArrival(1.0, tiny_task("fleeting"), lifetime=9.05)],
            core_deaths=[(10.0, 3)],
        )
        assert result.orphaned == len(result.miss_windows)
        resolved_by_departure = (
            result.orphaned - len(result.reassign_latencies) - len(result.lost)
        )
        assert 0 <= resolved_by_departure <= result.departed


class TestFaults:
    def test_fault_outcomes_follow_mode_semantics(self, platform):
        config, sim = make_sim(platform)
        ft_t = config.schedule.usable_window(Mode.FT)[0]
        nf_t = config.schedule.usable_window(Mode.NF)[0]
        result = sim.run(
            30.0,
            faults=[Fault(ft_t, 0), Fault(nf_t, 0), Fault(nf_t + 2e-9, 1)],
        )
        assert result.fault_outcomes == {"masked": 1, "corrupted": 2}

    def test_strikes_on_dead_cores_are_dropped(self, platform):
        config, sim = make_sim(platform)
        nf_t = 20.0 * config.period + config.schedule.usable_window(Mode.NF)[0]
        result = sim.run(
            30.0,
            core_deaths=[(1.0, 2)],
            faults=[Fault(nf_t, 2)],
        )
        assert result.fault_outcomes == {}

    def test_fault_outside_cores_rejected(self, platform):
        _config, sim = make_sim(platform)
        with pytest.raises(ValueError, match="outside the platform's cores"):
            sim.run(30.0, faults=[Fault(1.0, 5, 8)])


class TestDeterminism:
    def test_identical_runs_produce_identical_records(self, platform):
        records = []
        for _ in range(2):
            _config, sim = make_sim(platform)
            result = sim.run(
                60.0,
                arrivals=[
                    OnlineArrival(1.0, tiny_task("d1"), lifetime=30.0),
                    OnlineArrival(4.0, tiny_task("d2", Mode.FS), lifetime=20.0),
                ],
                core_deaths=[(10.0, 2)],
                faults=[Fault(5.0, 0)],
            )
            records.append(result.to_record())
        assert records[0] == records[1]
