"""Canonical digesting of full simulation results.

The event-queue refactor of :mod:`repro.sim.multicore` promises *byte
identity*: the same partition, schedule, faults and offsets must produce
the same jobs, slices, events and fault records before and after the
rewrite. These helpers serialize a :class:`MulticoreResult` into canonical
JSON and hash it, so goldens captured against the pre-refactor simulator
pin the post-refactor one (see ``tests/sim/test_event_refactor.py``).
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.runner.spec import canonical_json
from repro.sim.multicore import MulticoreResult


def result_payload(result: MulticoreResult) -> dict[str, Any]:
    """A :class:`MulticoreResult` as one canonical-JSON-able mapping."""
    processors = {}
    for key in sorted(result.processors):
        res = result.processors[key]
        processors[key] = {
            "jobs": [
                {
                    "name": j.name,
                    "state": str(j.state),
                    "release": j.release,
                    "remaining": j.remaining,
                    "finish": j.completion_time,
                    "corrupted": bool(getattr(j, "corrupted", False)),
                }
                for j in res.jobs
            ],
            "slices": [
                [s.processor, s.job, s.start, s.end] for s in res.trace.slices
            ],
            "events": [
                [e.time, str(e.kind), e.who, e.detail]
                for e in res.trace.events
            ],
        }
    return {
        "horizon": result.horizon,
        "processors": processors,
        "trace_events": [
            [e.time, str(e.kind), e.who, e.detail]
            for e in result.trace.events
        ],
        "fault_records": [
            {
                "time": r.fault.time,
                "core": r.fault.core,
                "outcome": str(r.outcome),
                "mode": str(r.mode) if r.mode is not None else None,
                "processor": r.processor,
                "victim": r.victim,
                "detail": r.detail,
            }
            for r in result.fault_records
        ],
    }


def result_digest(result: MulticoreResult) -> str:
    """SHA-256 of the canonical result payload."""
    return hashlib.sha256(
        canonical_json(result_payload(result)).encode("utf-8")
    ).hexdigest()
