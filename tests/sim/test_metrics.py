"""Tests for post-simulation metrics."""

import pytest

from repro.model import Mode
from repro.sim import MulticoreSim
from repro.sim.metrics import (
    mode_service,
    response_statistics,
    summarize,
    time_accounting,
)


@pytest.fixture(scope="module")
def run(paper_part, paper_config_b):
    sim = MulticoreSim(paper_part, paper_config_b)
    return sim.run(horizon=paper_config_b.period * 40)


class TestResponseStatistics:
    def test_all_tasks_present(self, run, paper_ts):
        stats = response_statistics(run)
        assert set(stats) == set(paper_ts.names)

    def test_worst_at_most_deadline(self, run):
        for s in response_statistics(run).values():
            assert s.worst <= s.deadline + 1e-9
            assert s.worst_case_laxity >= -1e-9

    def test_mean_at_most_worst(self, run):
        for s in response_statistics(run).values():
            assert s.mean <= s.worst + 1e-12

    def test_counts_positive(self, run):
        for s in response_statistics(run).values():
            assert s.completed > 0

    def test_normalised_in_unit_interval(self, run):
        for s in response_statistics(run).values():
            assert 0.0 < s.normalised_worst <= 1.0 + 1e-9


class TestModeService:
    def test_delivered_alpha_close_to_promise(self, run, paper_config_b):
        for mode, svc in mode_service(run, paper_config_b).items():
            # Whole cycles in the horizon: delivered == promised exactly.
            assert svc.delivered_alpha == pytest.approx(
                svc.promised_alpha, rel=1e-6
            )

    def test_window_use_bounded(self, run, paper_config_b):
        for svc in mode_service(run, paper_config_b).values():
            assert 0.0 <= svc.mode_utilization <= 1.0 + 1e-9

    def test_busy_time_below_capacity(self, run, paper_config_b):
        for svc in mode_service(run, paper_config_b).values():
            assert svc.busy_time <= svc.capacity + 1e-6
            assert svc.capacity == pytest.approx(
                svc.window_time * svc.mode.parallelism
            )


class TestTimeAccounting:
    def test_partition_of_horizon(self, run):
        acct = time_accounting(run)
        assert acct.usable + acct.overhead + acct.idle == pytest.approx(
            acct.horizon
        )

    def test_overhead_bandwidth_matches_design(self, run, paper_config_b):
        acct = time_accounting(run)
        assert acct.overhead_bandwidth == pytest.approx(
            paper_config_b.schedule.overheads.total / paper_config_b.period,
            rel=1e-6,
        )


class TestSummary:
    def test_summary_mentions_key_figures(self, run, paper_config_b):
        text = summarize(run, paper_config_b)
        assert "misses 0" in text
        assert "tightest task" in text
        assert "FT" in text


class TestZeroHorizonEdgeCases:
    """Degenerate runs (horizon 0) must report zeros, not divide by zero."""

    def test_overhead_bandwidth_zero_horizon(self):
        from repro.sim.metrics import TimeAccounting

        acct = TimeAccounting(usable=0.0, overhead=0.0, idle=0.0, horizon=0.0)
        assert acct.overhead_bandwidth == 0.0

    def test_delivered_alpha_zero_horizon(self):
        from repro.sim.metrics import ModeService

        svc = ModeService(
            mode=Mode.NF,
            window_time=0.0,
            busy_time=0.0,
            promised_alpha=0.5,
            horizon=0.0,
        )
        assert svc.delivered_alpha == 0.0
        assert svc.mode_utilization == 0.0

    def test_simulator_rejects_zero_horizon(self, paper_part, paper_config_b):
        # The simulator's own contract: a run must cover positive time.
        # The metric dataclasses above still guard division because merged
        # or hand-built results can carry a degenerate horizon.
        sim = MulticoreSim(paper_part, paper_config_b)
        with pytest.raises(ValueError, match="horizon"):
            sim.run(horizon=0.0)
