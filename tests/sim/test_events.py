"""Event-queue tests: total order, FIFO stability, validation, drain.

The queue is the shared core of the offline and online simulators; its
determinism contract — events pop by (time, kind priority, insertion
order), bit-identically for any push order of distinct-time events — is
what keeps both simulation modes reproducible, so the ordering laws are
pinned property-style here.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Event, EventKind, EventQueue


class TestEvent:
    def test_fields(self):
        ev = Event(1.5, EventKind.ARRIVAL, data="payload")
        assert ev.time == 1.5
        assert ev.kind is EventKind.ARRIVAL
        assert ev.data == "payload"

    def test_time_must_be_finite_nonnegative(self):
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                Event(bad, EventKind.ARRIVAL)
        with pytest.raises(TypeError):
            Event("soon", EventKind.ARRIVAL)

    def test_kind_must_be_eventkind(self):
        with pytest.raises(TypeError):
            Event(0.0, "arrival")

    def test_kind_priorities(self):
        # Deaths are observed before strikes; departures free bandwidth
        # before same-instant admissions; orphans re-admit before new
        # arrivals compete for the reserve.
        assert (
            EventKind.CORE_DEATH
            < EventKind.FAULT_STRIKE
            < EventKind.DEPARTURE
            < EventKind.REASSIGN
            < EventKind.ARRIVAL
        )

    def test_str_is_lowercase_name(self):
        assert str(EventKind.CORE_DEATH) == "core_death"


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        q.push_at(3.0, EventKind.ARRIVAL)
        q.push_at(1.0, EventKind.ARRIVAL)
        q.push_at(2.0, EventKind.ARRIVAL)
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_same_time_orders_by_kind_priority(self):
        q = EventQueue()
        q.push_at(1.0, EventKind.ARRIVAL)
        q.push_at(1.0, EventKind.CORE_DEATH)
        q.push_at(1.0, EventKind.DEPARTURE)
        kinds = [q.pop().kind for _ in range(3)]
        assert kinds == [
            EventKind.CORE_DEATH, EventKind.DEPARTURE, EventKind.ARRIVAL
        ]

    def test_same_time_same_kind_is_fifo(self):
        q = EventQueue()
        for i in range(5):
            q.push_at(1.0, EventKind.FAULT_STRIKE, data=i)
        assert [q.pop().data for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_push_requires_event(self):
        q = EventQueue()
        with pytest.raises(TypeError):
            q.push((1.0, EventKind.ARRIVAL))

    def test_pop_peek_empty(self):
        q = EventQueue()
        assert len(q) == 0 and not q
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()

    def test_peek_does_not_consume(self):
        q = EventQueue()
        ev = q.push_at(1.0, EventKind.ARRIVAL)
        assert q.peek() is ev
        assert len(q) == 1
        assert q.pop() is ev

    def test_drain_stops_at_until(self):
        q = EventQueue()
        q.push_at(1.0, EventKind.ARRIVAL, data="in")
        q.push_at(5.0, EventKind.ARRIVAL, data="out")
        drained = [ev.data for ev in q.drain(until=5.0)]
        assert drained == ["in"]
        assert q.pop().data == "out"

    def test_drain_supports_pushes_mid_drain(self):
        # The online engine schedules re-assignments while draining.
        q = EventQueue()
        q.push_at(1.0, EventKind.CORE_DEATH)
        seen = []
        for ev in q.drain():
            seen.append((ev.time, ev.kind))
            if ev.kind is EventKind.CORE_DEATH:
                q.push_at(2.0, EventKind.REASSIGN)
        assert seen == [
            (1.0, EventKind.CORE_DEATH), (2.0, EventKind.REASSIGN)
        ]


@st.composite
def event_batches(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    times = st.floats(
        min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
    )
    kinds = st.sampled_from(list(EventKind))
    return [
        Event(draw(times), draw(kinds), data=i) for i in range(n)
    ]


class TestOrderingProperties:
    @given(event_batches())
    @settings(max_examples=100, deadline=None)
    def test_pop_sequence_is_sorted_and_stable(self, events):
        q = EventQueue()
        for ev in events:
            q.push(ev)
        popped = [q.pop() for _ in range(len(events))]
        keys = [(ev.time, int(ev.kind)) for ev in popped]
        assert keys == sorted(keys)
        # FIFO within equal (time, kind): insertion indices stay ascending.
        for a, b in zip(popped, popped[1:]):
            if (a.time, a.kind) == (b.time, b.kind):
                assert a.data < b.data

    @given(event_batches())
    @settings(max_examples=50, deadline=None)
    def test_drain_equals_pop_loop(self, events):
        q1, q2 = EventQueue(), EventQueue()
        for ev in events:
            q1.push(ev)
            q2.push(ev)
        assert list(q1.drain()) == [q2.pop() for _ in range(len(events))]
