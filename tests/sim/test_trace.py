"""Unit tests for trace recording and rendering."""

import pytest

from repro.sim import ExecutionSlice, SimEventKind, SimTrace


@pytest.fixture
def trace():
    t = SimTrace(horizon=10.0)
    t.add_slice(ExecutionSlice("P0", "a#0", "a", 0.0, 1.0))
    t.add_slice(ExecutionSlice("P0", "a#0", "a", 1.0, 2.0))  # contiguous
    t.add_slice(ExecutionSlice("P0", "b#0", "b", 2.0, 3.0))
    t.add_slice(ExecutionSlice("P1", "c#0", "c", 0.5, 2.5))
    t.log(1.0, SimEventKind.COMPLETION, "a#0")
    t.log(3.5, SimEventKind.DEADLINE_MISS, "b#0")
    return t


class TestSlices:
    def test_contiguous_slices_merge(self, trace):
        p0 = trace.slices_on("P0")
        assert p0[0].start == 0.0 and p0[0].end == 2.0

    def test_non_contiguous_not_merged(self, trace):
        assert len(trace.slices_on("P0")) == 2

    def test_busy_time(self, trace):
        assert trace.busy_time("P0") == pytest.approx(3.0)
        assert trace.busy_time() == pytest.approx(5.0)

    def test_task_execution(self, trace):
        assert trace.task_execution("a") == pytest.approx(2.0)

    def test_duration_property(self):
        s = ExecutionSlice("P", "j", "t", 1.5, 4.0)
        assert s.duration == pytest.approx(2.5)


class TestEvents:
    def test_events_of_kind(self, trace):
        assert len(trace.events_of(SimEventKind.COMPLETION)) == 1

    def test_misses_query(self, trace):
        assert [e.who for e in trace.misses()] == ["b#0"]

    def test_merge_combines_and_sorts(self, trace):
        other = SimTrace(horizon=10.0)
        other.log(0.5, SimEventKind.RELEASE, "x#0")
        trace.merge(other)
        assert trace.events[0].who == "x#0"

    def test_event_repr(self, trace):
        assert "deadline_miss" in repr(trace.misses()[0])


class TestGantt:
    def test_gantt_contains_processor_rows(self, trace):
        g = trace.gantt(width=20)
        assert "P0" in g and "P1" in g

    def test_gantt_marks_execution(self, trace):
        g = trace.gantt(width=10, end=10.0)
        row_p0 = [l for l in g.splitlines() if l.startswith("P0")][0]
        assert "a" in row_p0 or "b" in row_p0

    def test_gantt_idle_shows_dots(self, trace):
        g = trace.gantt(width=10)
        row_p1 = [l for l in g.splitlines() if l.startswith("P1")][0]
        assert "." in row_p1

    def test_gantt_empty_range_rejected(self, trace):
        with pytest.raises(ValueError):
            trace.gantt(start=5.0, end=5.0)

    def test_gantt_processor_filter(self, trace):
        g = trace.gantt(width=10, processors=["P0"])
        assert "P1" not in g


class TestEmptyTrace:
    """A freshly constructed trace answers every query without slices."""

    def test_queries_on_empty_trace(self):
        empty = SimTrace(horizon=10.0)
        assert empty.busy_time() == 0.0
        assert empty.busy_time("P0") == 0.0
        assert empty.task_execution("a") == 0.0
        assert empty.slices_on("P0") == []
        assert empty.misses() == []
        assert empty.events_of(SimEventKind.RELEASE) == []

    def test_gantt_of_empty_trace_is_all_idle(self):
        empty = SimTrace(horizon=4.0)
        g = empty.gantt(width=8, processors=["P0"])
        row = [l for l in g.splitlines() if l.startswith("P0")][0]
        assert row.count(".") == 8

    def test_gantt_without_processors_renders_header_only(self):
        # No slices -> no processor set to infer rows from.
        g = SimTrace(horizon=4.0).gantt(width=8)
        assert len(g.splitlines()) == 1

    def test_zero_horizon_gantt_rejected(self):
        with pytest.raises(ValueError, match="empty gantt range"):
            SimTrace(horizon=0.0).gantt(width=8)

    def test_merge_of_two_empty_traces(self):
        a = SimTrace(horizon=5.0)
        a.merge(SimTrace(horizon=5.0))
        assert a.slices == [] and a.events == []

    def test_merge_into_empty_adopts_other(self, trace):
        empty = SimTrace(horizon=10.0)
        empty.merge(trace)
        assert len(empty.slices) == len(trace.slices)
        assert [e.who for e in empty.misses()] == ["b#0"]
