"""Analysis/simulation cross-validation tests."""

import pytest

from repro.core import Overheads, SlotSchedule, PlatformConfig
from repro.model import Mode
from repro.sim import MulticoreSim, measured_mode_supply, validate_design
from repro.sim.validation import supply_dominates_guarantee


class TestValidateDesign:
    def test_paper_design_b_validates(self, paper_part, paper_config_b):
        report = validate_design(
            paper_part, paper_config_b,
            horizon=paper_config_b.period * 41,
        )
        assert report.ok
        assert set(report.miss_counts) == {"zero", "critical"}
        assert all(v == 0 for v in report.miss_counts.values())
        assert all(report.supply_ok.values())

    def test_paper_design_c_validates(self, paper_part, paper_config_c):
        report = validate_design(
            paper_part, paper_config_c,
            horizon=paper_config_c.period * 150,
        )
        assert report.ok

    def test_starved_schedule_fails_validation(self, paper_part, paper_config_b):
        # Shrink the FT quantum far below its binding value: tau10..13 miss.
        s = paper_config_b.schedule
        bad = SlotSchedule(
            s.period,
            {
                Mode.FT: s.quantum(Mode.FT) * 0.3,
                Mode.FS: s.quantum(Mode.FS),
                Mode.NF: s.quantum(Mode.NF),
            },
            s.overheads,
        )
        bad_cfg = PlatformConfig(bad, "EDF")
        report = validate_design(
            paper_part, bad_cfg,
            horizon=s.period * 41, check_supply=False,
        )
        assert not report.ok
        assert any(c > 0 for c in report.miss_counts.values())
        assert report.notes

    def test_measured_supply_dominates_guarantee(
        self, paper_part, paper_config_b
    ):
        sim = MulticoreSim(paper_part, paper_config_b)
        res = sim.run(horizon=paper_config_b.period * 30)
        for mode in Mode:
            assert supply_dominates_guarantee(res, paper_config_b, mode)

    def test_measured_mode_supply_properties(self, paper_part, paper_config_b):
        sim = MulticoreSim(paper_part, paper_config_b)
        res = sim.run(horizon=paper_config_b.period * 30)
        m = measured_mode_supply(res, Mode.FS)
        # the long-run measured rate equals Q̃/P exactly (static slots)
        assert m.alpha == pytest.approx(
            paper_config_b.schedule.alpha(Mode.FS), rel=1e-6
        )
