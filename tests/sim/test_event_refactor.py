"""Byte-identity regression for the event-queue simulation core.

The offline ``MulticoreSim`` loop was refactored through
:class:`repro.sim.events.EventQueue`; these digests were captured from the
pre-refactor fixed-loop implementation on table2-, figure4- and
faultspace-shaped workloads, and the event-driven core must keep every one
of them byte-for-byte. The digest covers the *full* result: every job's
state/release/completion per processor, execution slices, trace events and
fault-classification records (see :mod:`tests.sim.simdigest`).
"""

import numpy as np
import pytest

from repro.core import Overheads, design_platform
from repro.dependability import scenario_from_params
from repro.experiments.paper import paper_partition
from repro.generators import generate_mixed_taskset
from repro.partition import partition_by_modes
from repro.sim.multicore import MulticoreSim

from .simdigest import result_digest

TABLE2_SHAPED_DIGEST = (
    "957c699d561ab1a45d3180906182d7b2562d16826e1581e79abae28fe6d8daa7"
)
FIGURE4_SHAPED_DIGEST = (
    "a4bcb25ec2b86a3c5f82c0ce59b1e0a24d28b72b4cad2eb88ce1886008852e53"
)
FAULTSPACE_SHAPED_DIGESTS = {
    "poisson": "6d7b0c186c3e1e24ecb1c0ba7a57b98d10972e1f6c12d3eb5084bf167057f5ce",
    "bursty": "bf7534921a2e9e33632ad9ddb443ee4dfad5d827fd9ea6f636f9f9e9971f07b4",
    "permanent": "57fe387a59d56b0ea1dead7782cbb48e036f7f67ede2738f07caa426fd7bd547",
}


def test_table2_shaped_run_unchanged():
    part = paper_partition()
    config = design_platform(
        part, "EDF", Overheads.uniform(0.05), "min-overhead-bandwidth"
    )
    result = MulticoreSim(part, config).run(config.period * 12)
    assert result_digest(result) == TABLE2_SHAPED_DIGEST


def test_figure4_shaped_run_unchanged():
    part = paper_partition()
    config = design_platform(part, "RM", Overheads.uniform(0.0), "max-slack")
    result = MulticoreSim(part, config).run(
        config.period * 12, release_offsets="critical"
    )
    assert result_digest(result) == FIGURE4_SHAPED_DIGEST


def _faultspace_shaped(scenario_params, seed):
    gen_seed, fault_seed = np.random.SeedSequence(seed).spawn(2)
    ts = generate_mixed_taskset(
        8, 0.8, np.random.default_rng(gen_seed),
        period_method="hyperperiod-limited", period_hyperperiod=3600.0,
    )
    part = partition_by_modes(ts, heuristic="worst-fit", admission="utilization")
    config = design_platform(
        part, "EDF", Overheads.uniform(0.05), "min-overhead-bandwidth"
    )
    horizon = config.period * 20
    scenario = scenario_from_params(scenario_params)
    faults = scenario.generate(
        horizon, np.random.default_rng(fault_seed), core_count=config.core_count
    )
    return MulticoreSim(part, config).run(horizon, faults=faults)


@pytest.mark.parametrize(
    "scenario_params, seed",
    [
        ({"scenario": "poisson", "rate": 0.05}, 7),
        ({"scenario": "bursty", "rate": 0.05}, 11),
        ({"scenario": "permanent", "rate": 0.1, "onset_fraction": 0.5}, 13),
    ],
    ids=["poisson", "bursty", "permanent"],
)
def test_faultspace_shaped_run_unchanged(scenario_params, seed):
    result = _faultspace_shaped(scenario_params, seed)
    expected = FAULTSPACE_SHAPED_DIGESTS[scenario_params["scenario"]]
    assert result_digest(result) == expected
