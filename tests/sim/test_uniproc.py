"""Unit tests for the single-logical-processor simulator."""

import pytest

from repro.model import JobState, Task, TaskSet
from repro.sim import make_policy, simulate_uniproc
from repro.sim.trace import SimEventKind
from repro.sim.uniproc import merge_windows, subtract_blackouts


def run(ts, alg="EDF", windows=None, horizon=24.0, **kw):
    windows = windows if windows is not None else [(0.0, horizon)]
    return simulate_uniproc(
        ts, make_policy(ts, alg), windows, horizon, **kw
    )


class TestWindowHelpers:
    def test_merge_orders_and_merges(self):
        assert merge_windows([(5, 8), (0, 2), (2, 4)], 10.0) == [(0.0, 4.0), (5.0, 8.0)]

    def test_merge_clips_horizon(self):
        assert merge_windows([(0, 20)], 10.0) == [(0.0, 10.0)]

    def test_merge_drops_empty(self):
        assert merge_windows([(3, 3)], 10.0) == []

    def test_subtract_blackouts_middle(self):
        out = subtract_blackouts([(0, 10)], [(4, 6)])
        assert out == [(0, 4), (6, 10)]

    def test_subtract_blackouts_edges(self):
        out = subtract_blackouts([(0, 10)], [(0, 3), (8, 10)])
        assert out == [(3, 8)]

    def test_subtract_no_overlap(self):
        assert subtract_blackouts([(0, 2)], [(5, 6)]) == [(0, 2)]

    def test_merge_windows_touching_within_eps(self):
        # Gap smaller than EPS counts as touching and merges.
        from repro.util import EPS

        out = merge_windows([(0.0, 2.0), (2.0 + EPS / 2, 4.0)], 10.0)
        assert out == [(0.0, 4.0)]

    def test_merge_windows_gap_just_beyond_eps_stays_split(self):
        from repro.util import EPS

        out = merge_windows([(0.0, 2.0), (2.0 + 10 * EPS, 4.0)], 10.0)
        assert len(out) == 2

    def test_merge_contained_window_absorbed(self):
        assert merge_windows([(0, 10), (2, 4)], 20.0) == [(0.0, 10.0)]

    def test_merge_drops_window_entirely_past_horizon(self):
        assert merge_windows([(12, 15), (0, 2)], 10.0) == [(0.0, 2.0)]

    def test_merge_negative_start_clipped_to_zero(self):
        assert merge_windows([(-5, 3)], 10.0) == [(0.0, 3.0)]

    def test_subtract_blackout_exactly_covers_window(self):
        assert subtract_blackouts([(2, 5)], [(2, 5)]) == []

    def test_subtract_blackout_straddles_window(self):
        assert subtract_blackouts([(2, 5)], [(1, 6)]) == []

    def test_subtract_blackout_straddles_left_boundary(self):
        assert subtract_blackouts([(2, 8)], [(0, 4)]) == [(4, 8)]

    def test_subtract_blackout_straddles_right_boundary(self):
        assert subtract_blackouts([(2, 8)], [(6, 10)]) == [(2, 6)]

    def test_subtract_zero_width_blackout_loses_no_time(self):
        # A zero-width blackout may split the window but removes nothing.
        out = subtract_blackouts([(0, 10)], [(4, 4)])
        assert out == [(0, 4), (4, 10)]
        assert sum(b - a for a, b in out) == 10

    def test_subtract_eps_sliver_dropped(self):
        # Remainder pieces narrower than EPS do not survive.
        from repro.util import EPS

        assert subtract_blackouts([(0.0, 4.0)], [(EPS / 2, 4.0)]) == []
        assert subtract_blackouts([(0.0, 4.0)], [(0.0, 4.0 - EPS / 2)]) == []

    def test_subtract_multiple_blackouts_slice_one_window(self):
        out = subtract_blackouts([(0, 12)], [(2, 4), (6, 8), (10, 14)])
        assert out == [(0, 2), (4, 6), (8, 10)]

    def test_subtract_blackout_spanning_two_windows(self):
        out = subtract_blackouts([(0, 4), (6, 10)], [(3, 7)])
        assert out == [(0, 3), (7, 10)]


class TestDedicatedExecution:
    def test_single_task_completes_every_period(self):
        ts = TaskSet([Task("a", 1, 4)])
        res = run(ts, horizon=12.0)
        assert len(res.completed) == 3
        assert not res.misses

    def test_response_times_match_rta(self):
        # classic set: WCRTs 1, 2, 4.
        ts = TaskSet([Task("a", 1, 4), Task("b", 1, 5), Task("c", 2, 10)])
        res = run(ts, "RM", horizon=40.0)
        assert res.worst_response_time("a") == pytest.approx(1.0)
        assert res.worst_response_time("b") == pytest.approx(2.0)
        assert res.worst_response_time("c") == pytest.approx(4.0)

    def test_preemption_splits_slices(self):
        ts = TaskSet([Task("hi", 1, 4), Task("lo", 4, 12)])
        res = run(ts, "RM", horizon=12.0)
        # lo runs [1,4), is preempted by hi#1 at t=4, resumes at 5.
        lo_slices = [s for s in res.trace.slices if s.task == "lo"]
        assert len(lo_slices) == 2
        assert lo_slices[0].end == pytest.approx(4.0)
        assert lo_slices[1].start == pytest.approx(5.0)

    def test_edf_full_utilization_meets_deadlines(self):
        ts = TaskSet([Task("x", 2, 4), Task("y", 4, 8)])
        res = run(ts, "EDF", horizon=40.0)
        assert not res.misses
        assert res.trace.busy_time() == pytest.approx(40.0)

    def test_rm_infeasible_set_misses(self):
        ts = TaskSet([Task("a", 1, 2), Task("b", 2.5, 5)])
        res = run(ts, "RM", horizon=20.0)
        assert res.misses
        assert all(e.who.startswith("b") for e in res.misses)

    def test_overload_detected_at_horizon(self):
        ts = TaskSet([Task("a", 3, 4), Task("b", 3, 8)])
        res = run(ts, "EDF", horizon=24.0)
        assert res.misses


class TestWindowedExecution:
    def test_no_execution_outside_windows(self):
        ts = TaskSet([Task("a", 1, 4)])
        res = run(ts, windows=[(2.0, 4.0), (6.0, 8.0)], horizon=8.0)
        for s in res.trace.slices:
            assert s.start >= 2.0 - 1e-9
            assert s.end <= 8.0 + 1e-9
            assert not (4.0 + 1e-9 < s.start < 6.0 - 1e-9)

    def test_budget_starvation_causes_miss(self):
        # C=2 per period 4, but only 1 unit of window per period.
        ts = TaskSet([Task("a", 2, 4)])
        res = run(ts, windows=[(0, 1), (4, 5), (8, 9)], horizon=12.0)
        assert res.misses

    def test_sufficient_slots_meet_deadlines(self):
        # C=1 per period 4; slot [0,2) per cycle of 4 suffices.
        ts = TaskSet([Task("a", 1, 4)])
        windows = [(k * 4.0, k * 4.0 + 2.0) for k in range(5)]
        res = run(ts, windows=windows, horizon=20.0)
        assert not res.misses
        assert len(res.completed) == 5

    def test_release_offsets(self):
        ts = TaskSet([Task("a", 1, 4)])
        res = run(ts, horizon=12.0, release_offsets={"a": 2.0})
        assert [j.release for j in res.jobs] == [2.0, 6.0, 10.0]

    def test_negative_offset_rejected(self):
        ts = TaskSet([Task("a", 1, 4)])
        with pytest.raises(ValueError):
            run(ts, horizon=12.0, release_offsets={"a": -1.0})


class TestAbortEvents:
    def test_abort_kills_running_job(self):
        ts = TaskSet([Task("a", 2, 10)])
        res = run(ts, horizon=10.0, abort_events=[1.0])
        assert len(res.aborted) == 1
        assert res.aborted[0].name == "a#0"
        aborts = res.trace.events_of(SimEventKind.ABORT)
        assert len(aborts) == 1 and aborts[0].time == pytest.approx(1.0)

    def test_abort_on_idle_instant_is_harmless(self):
        ts = TaskSet([Task("a", 1, 10)])
        res = run(ts, horizon=10.0, abort_events=[5.0])  # a done at t=1
        assert not res.aborted
        assert len(res.completed) == 1

    def test_abort_between_windows_is_harmless(self):
        ts = TaskSet([Task("a", 1, 10)])
        res = run(ts, windows=[(0, 2), (6, 8)], horizon=10.0, abort_events=[4.0])
        assert not res.aborted

    def test_aborted_job_not_counted_as_miss(self):
        # Killed fail-silent jobs are casualties, not deadline misses.
        ts = TaskSet([Task("a", 2, 10)])
        res = run(ts, horizon=10.0, abort_events=[1.0])
        assert not res.misses

    def test_execution_resumes_after_abort(self):
        ts = TaskSet([Task("a", 2, 4)])
        res = run(ts, horizon=8.0, abort_events=[1.0])
        # job 0 aborted; job 1 (released at 4) completes normally.
        assert len(res.completed) == 1
        assert res.completed[0].index == 1


class TestResultQueries:
    def test_job_running_at(self):
        ts = TaskSet([Task("a", 2, 10)])
        res = run(ts, horizon=10.0)
        assert res.job_running_at(1.0) == "a#0"
        assert res.job_running_at(5.0) is None

    def test_response_times_grouped(self):
        ts = TaskSet([Task("a", 1, 4), Task("b", 1, 8)])
        res = run(ts, horizon=8.0)
        rts = res.response_times()
        assert len(rts["a"]) == 2
        assert len(rts["b"]) == 1

    def test_jobs_whose_deadline_exceeds_horizon_not_judged(self):
        ts = TaskSet([Task("a", 2, 10)])
        res = run(ts, windows=[(0, 1)], horizon=5.0)
        # deadline at 10 > horizon 5: incomplete but not a recorded miss
        assert not res.misses

    def test_horizon_validation(self):
        ts = TaskSet([Task("a", 1, 4)])
        with pytest.raises(ValueError):
            run(ts, horizon=0.0)
