"""Unit tests for scheduling policies."""

import pytest

from repro.model import Job, Task, TaskSet
from repro.sim import EDFPolicy, FixedPriorityPolicy, make_policy


@pytest.fixture
def tasks():
    a = Task("a", 1, 4)
    b = Task("b", 1, 6)
    c = Task("c", 1, 12)
    return a, b, c


class TestFixedPriority:
    def test_highest_priority_wins(self, tasks):
        a, b, c = tasks
        pol = FixedPriorityPolicy([a, b, c])
        jobs = [Job(b, 0, 0), Job(a, 0, 0), Job(c, 0, 0)]
        assert pol.select(jobs).task.name == "a"

    def test_ignores_inactive_jobs(self, tasks):
        a, b, _ = tasks
        pol = FixedPriorityPolicy([a, b])
        ja, jb = Job(a, 0, 0), Job(b, 0, 0)
        ja.execute(1.0)  # exhausted
        assert pol.select([ja, jb]).task.name == "b"

    def test_empty_returns_none(self, tasks):
        a, *_ = tasks
        assert FixedPriorityPolicy([a]).select([]) is None

    def test_unknown_task_raises(self, tasks):
        a, b, _ = tasks
        pol = FixedPriorityPolicy([a])
        with pytest.raises(KeyError):
            pol.select([Job(b, 0, 0)])

    def test_tie_broken_by_release(self, tasks):
        a, *_ = tasks
        pol = FixedPriorityPolicy([a])
        j0, j1 = Job(a, 0, 0), Job(a, 4, 1)
        assert pol.select([j1, j0]) is j0


class TestEDF:
    def test_earliest_deadline_wins(self, tasks):
        a, b, _ = tasks
        pol = EDFPolicy()
        # a released later but tighter deadline
        ja = Job(a, 2, 0)   # deadline 6
        jb = Job(b, 1, 0)   # deadline 7
        assert pol.select([jb, ja]) is ja

    def test_tie_broken_deterministically(self, tasks):
        a, _, _ = tasks
        other = Task("z", 1, 4)
        pol = EDFPolicy()
        ja, jz = Job(a, 0, 0), Job(other, 0, 0)
        assert pol.select([jz, ja]) is ja  # name order

    def test_empty_returns_none(self):
        assert EDFPolicy().select([]) is None


class TestMakePolicy:
    def test_edf(self, tasks):
        ts = TaskSet(tasks)
        assert isinstance(make_policy(ts, "EDF"), EDFPolicy)

    def test_rm_order(self, tasks):
        ts = TaskSet(tasks)
        pol = make_policy(ts, "RM")
        assert pol.rank_of("a") == 0
        assert pol.rank_of("c") == 2

    def test_dm_uses_deadlines(self):
        ts = TaskSet([Task("x", 1, 10, deadline=3), Task("y", 1, 5)])
        pol = make_policy(ts, "DM")
        assert pol.rank_of("x") == 0

    def test_unknown_rejected(self, tasks):
        with pytest.raises(ValueError):
            make_policy(TaskSet(tasks), "LLF")
