"""Unit tests for the full-platform simulator."""

import pytest

from repro.faults import Fault, FaultOutcome
from repro.model import Mode
from repro.sim import MulticoreSim


@pytest.fixture
def sim(paper_part, paper_config_b):
    return MulticoreSim(paper_part, paper_config_b)


@pytest.fixture
def short(sim, paper_config_b):
    """A ~30-cycle fault-free run reused by several tests."""
    return sim.run(horizon=paper_config_b.period * 30)


class TestFaultFreeRun:
    def test_no_misses(self, short):
        assert short.miss_count == 0

    def test_every_nonempty_bin_has_a_processor(self, short, paper_part):
        expected = {
            f"{mode}[{i}]"
            for mode in Mode
            for i, ts in enumerate(paper_part.bins(mode))
            if len(ts)
        }
        assert set(short.processors) == expected

    def test_slices_respect_mode_windows(self, short, paper_config_b):
        from repro.platform import ModeSwitchController, SegmentKind

        ctrl = ModeSwitchController(paper_config_b.schedule)
        for s in short.trace.slices[:200]:
            seg = ctrl.segment_at(s.start + 1e-9)
            assert seg.kind is SegmentKind.USABLE
            assert f"{seg.mode}[" in s.processor

    def test_worst_response_times_bounded_by_deadlines(self, short, paper_ts):
        for task, rt in short.worst_response_times().items():
            assert rt <= paper_ts[task].deadline + 1e-9

    def test_all_tasks_execute(self, short, paper_ts):
        executed = {s.task for s in short.trace.slices}
        assert executed == set(paper_ts.names)

    def test_critical_phasing_also_clean(self, sim, paper_config_b):
        res = sim.run(
            horizon=paper_config_b.period * 30, release_offsets="critical"
        )
        assert res.miss_count == 0

    def test_unknown_phasing_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.run(horizon=10.0, release_offsets="banana")

    def test_raw_schedule_requires_algorithm(self, paper_part, paper_config_b):
        with pytest.raises(ValueError):
            MulticoreSim(paper_part, paper_config_b.schedule)
        MulticoreSim(paper_part, paper_config_b.schedule, "EDF")  # ok


class TestFaultInjection:
    def _usable_instant(self, config, mode, eps=1e-3):
        a, b = config.schedule.usable_window(mode)
        return (a + b) / 2.0

    def test_ft_fault_masked(self, sim, paper_config_b):
        t = self._usable_instant(paper_config_b, Mode.FT)
        res = sim.run(
            horizon=paper_config_b.period * 10, faults=[Fault(t, core=2)]
        )
        assert res.fault_summary()[FaultOutcome.MASKED] == 1
        assert res.miss_count == 0

    def test_fs_fault_silences_channel(self, sim, paper_config_b):
        t = self._usable_instant(paper_config_b, Mode.FS)
        res = sim.run(
            horizon=paper_config_b.period * 10, faults=[Fault(t, core=0)]
        )
        rec = res.fault_records[0]
        assert rec.outcome is FaultOutcome.SILENCED
        assert rec.processor == "FS[0]"

    def test_fs_fault_on_other_couple(self, sim, paper_config_b):
        t = self._usable_instant(paper_config_b, Mode.FS)
        res = sim.run(
            horizon=paper_config_b.period * 10, faults=[Fault(t, core=3)]
        )
        assert res.fault_records[0].processor == "FS[1]"

    def test_nf_fault_corrupts_running_job(self, sim, paper_config_b):
        # tau5 keeps NF[3] busy; hit core 3 mid NF window.
        t = self._usable_instant(paper_config_b, Mode.NF)
        res = sim.run(
            horizon=paper_config_b.period * 10, faults=[Fault(t, core=3)]
        )
        rec = res.fault_records[0]
        assert rec.outcome in (FaultOutcome.CORRUPTED, FaultOutcome.HARMLESS)
        if rec.outcome is FaultOutcome.CORRUPTED:
            assert rec.victim is not None
            assert rec.victim in res.corrupted_jobs()

    def test_fault_in_overhead_time_harmless(self, sim, paper_config_b):
        a, b = paper_config_b.schedule.overhead_window(Mode.FT)
        res = sim.run(
            horizon=paper_config_b.period * 5,
            faults=[Fault((a + b) / 2, core=1)],
        )
        assert res.fault_records[0].outcome is FaultOutcome.HARMLESS

    def test_fault_beyond_horizon_rejected(self, sim):
        with pytest.raises(ValueError, match="beyond"):
            sim.run(horizon=5.0, faults=[Fault(100.0, core=0)])

    def test_ft_tasks_never_miss_even_under_ft_faults(self, sim, paper_config_b):
        # Inject one FT-slot fault per cycle for 10 cycles: all masked.
        P = paper_config_b.period
        a, b = paper_config_b.schedule.usable_window(Mode.FT)
        mid = (a + b) / 2
        faults = [Fault(mid + k * P, core=k % 4) for k in range(10)]
        res = sim.run(horizon=P * 11, faults=faults)
        summary = res.fault_summary()
        assert summary[FaultOutcome.MASKED] == 10
        assert res.miss_count == 0


class TestHorizonDefaults:
    def test_default_horizon_is_whole_cycles(self, sim, paper_config_b):
        h = sim.default_horizon()
        assert h / paper_config_b.period == pytest.approx(
            round(h / paper_config_b.period)
        )

    def test_default_horizon_covers_hyperperiod(self, sim, paper_ts):
        assert sim.default_horizon() >= paper_ts.hyperperiod()


class TestClassifyFaultGeneralizedPlatforms:
    """classify_fault beyond the hardcoded 4-core chip (2/5/6/8 cores)."""

    def _sim(self, core_count):
        from repro.core import SlotSchedule
        from repro.experiments.paper import paper_partition

        sched = SlotSchedule(
            3.0, {Mode.FT: 1.0, Mode.FS: 1.0, Mode.NF: 1.0}
        )
        return MulticoreSim(
            paper_partition(), sched, "EDF", core_count=core_count
        )

    def test_ft_masks_with_three_or_more_cores(self):
        for n in (6, 8):
            sim = self._sim(n)
            for core in (0, n - 1):
                outcome, mode, _idx, _seg = sim.classify_fault(
                    Fault(0.5, core, n)
                )
                assert (outcome, mode) == (FaultOutcome.MASKED, Mode.FT)

    def test_two_core_ft_degrades_to_fail_silent(self):
        sim = self._sim(2)
        outcome, mode, _idx, _seg = sim.classify_fault(Fault(0.5, 1, 2))
        assert (outcome, mode) == (FaultOutcome.SILENCED, Mode.FT)

    def test_fs_couples_silence_on_any_width(self):
        for n in (2, 6, 8):
            sim = self._sim(n)
            outcome, mode, idx, _seg = sim.classify_fault(
                Fault(1.5, n - 1, n)
            )
            assert (outcome, mode) == (FaultOutcome.SILENCED, Mode.FS)
            assert idx == (n - 1) // 2

    def test_odd_fs_trailing_singleton_corrupts(self):
        sim = self._sim(5)
        outcome, mode, idx, _seg = sim.classify_fault(Fault(1.5, 4, 5))
        assert (outcome, mode) == (FaultOutcome.CORRUPTED, Mode.FS)
        assert idx == 2

    def test_nf_corrupts_everywhere(self):
        for n in (2, 6, 8):
            sim = self._sim(n)
            outcome, mode, idx, _seg = sim.classify_fault(
                Fault(2.5, n - 1, n)
            )
            assert (outcome, mode) == (FaultOutcome.CORRUPTED, Mode.NF)
            assert idx == n - 1

    def test_fault_beyond_platform_rejected_with_hint(self):
        import pytest

        sim = self._sim(6)
        with pytest.raises(ValueError, match="core_count=6"):
            sim.classify_fault(Fault(0.5, 6, 8))
