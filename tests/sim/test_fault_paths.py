"""Deep tests of the fail-silent and corruption fault paths."""

import pytest

from repro.core import Overheads, PlatformConfig, SlotSchedule
from repro.faults import Fault, FaultOutcome
from repro.model import Mode, PartitionedTaskSet, Task, TaskSet
from repro.sim import MulticoreSim
from repro.sim.trace import SimEventKind


@pytest.fixture
def busy_platform():
    """A platform whose FS[0] channel is almost always busy.

    fs_busy has C=1.8 per T=4 inside an FS window of 2.0 per cycle of 4.0 —
    the channel is executing for 90% of every window, so a mid-window fault
    deterministically hits a running job.
    """
    ts = TaskSet(
        [
            Task("ft_t", 0.2, 8, mode=Mode.FT),
            Task("fs_busy", 1.8, 4, mode=Mode.FS),
            Task("nf_busy", 0.9, 4, mode=Mode.NF),
        ]
    )
    part = PartitionedTaskSet(
        {
            Mode.FT: [ts.subset(["ft_t"])],
            Mode.FS: [ts.subset(["fs_busy"])],
            Mode.NF: [ts.subset(["nf_busy"])],
        }
    )
    schedule = SlotSchedule(
        4.0,
        {Mode.FT: 0.5, Mode.FS: 2.0, Mode.NF: 1.2},
        Overheads.zero(),
    )
    return part, PlatformConfig(schedule, "EDF")


class TestFailSilentPath:
    def test_victim_recorded_and_aborted(self, busy_platform):
        part, cfg = busy_platform
        a, b = cfg.schedule.usable_window(Mode.FS)
        fault_t = (a + b) / 2  # mid FS window of cycle 0: fs_busy is running
        sim = MulticoreSim(part, cfg)
        res = sim.run(horizon=40.0, faults=[Fault(fault_t, core=0)])
        rec = res.fault_records[0]
        assert rec.outcome is FaultOutcome.SILENCED
        assert rec.victim == "fs_busy#0"
        assert "fs_busy#0" in res.aborted_jobs()

    def test_channel_blackout_until_slot_end(self, busy_platform):
        part, cfg = busy_platform
        a, b = cfg.schedule.usable_window(Mode.FS)
        fault_t = (a + b) / 2
        sim = MulticoreSim(part, cfg)
        res = sim.run(horizon=40.0, faults=[Fault(fault_t, core=1)])
        # No FS execution between the fault and the end of that slot.
        for s in res.processors["FS[0]"].trace.slices:
            assert not (fault_t + 1e-9 < s.end <= b + 1e-9 and s.start >= fault_t)
        # Service resumes in the next cycle.
        next_window_start = a + cfg.period
        assert any(
            s.start >= next_window_start - 1e-9
            for s in res.processors["FS[0]"].trace.slices
        )

    def test_aborted_job_is_not_a_deadline_miss(self, busy_platform):
        part, cfg = busy_platform
        a, b = cfg.schedule.usable_window(Mode.FS)
        sim = MulticoreSim(part, cfg)
        res = sim.run(horizon=40.0, faults=[Fault((a + b) / 2, core=0)])
        # fail-silent semantics: silence, not lateness.
        assert not any(
            e.who.startswith("fs_busy#0") for e in res.misses
        )

    def test_fs_fault_event_logged_in_merged_trace(self, busy_platform):
        part, cfg = busy_platform
        a, b = cfg.schedule.usable_window(Mode.FS)
        sim = MulticoreSim(part, cfg)
        res = sim.run(horizon=40.0, faults=[Fault((a + b) / 2, core=0)])
        fault_events = res.trace.events_of(SimEventKind.FAULT)
        assert len(fault_events) == 1
        assert "silenced" in fault_events[0].detail


class TestCorruptionPath:
    def test_running_nf_job_corrupted(self, busy_platform):
        part, cfg = busy_platform
        a, b = cfg.schedule.usable_window(Mode.NF)
        fault_t = (a + b) / 2
        sim = MulticoreSim(part, cfg)
        res = sim.run(horizon=40.0, faults=[Fault(fault_t, core=0)])
        rec = res.fault_records[0]
        assert rec.outcome is FaultOutcome.CORRUPTED
        assert rec.victim == "nf_busy#0"
        victim_job = next(
            j for j in res.processors["NF[0]"].jobs if j.name == rec.victim
        )
        assert victim_job.corrupted

    def test_corrupted_job_still_completes_on_time(self, busy_platform):
        # Silent data corruption does not change timing.
        part, cfg = busy_platform
        a, b = cfg.schedule.usable_window(Mode.NF)
        sim = MulticoreSim(part, cfg)
        res = sim.run(horizon=40.0, faults=[Fault((a + b) / 2, core=0)])
        assert res.miss_count == 0

    def test_idle_nf_core_fault_harmless(self, busy_platform):
        part, cfg = busy_platform
        a, b = cfg.schedule.usable_window(Mode.NF)
        # core 3 hosts no tasks (only NF[0] is populated).
        sim = MulticoreSim(part, cfg)
        res = sim.run(horizon=40.0, faults=[Fault((a + b) / 2, core=3)])
        assert res.fault_records[0].outcome is FaultOutcome.HARMLESS

    def test_timing_identical_with_and_without_nf_fault(self, busy_platform):
        part, cfg = busy_platform
        a, b = cfg.schedule.usable_window(Mode.NF)
        clean = MulticoreSim(part, cfg).run(horizon=40.0)
        faulty = MulticoreSim(part, cfg).run(
            horizon=40.0, faults=[Fault((a + b) / 2, core=0)]
        )
        assert clean.trace.busy_time("NF[0]") == pytest.approx(
            faulty.trace.busy_time("NF[0]")
        )
