"""Setup shim.

The metadata lives in pyproject.toml; this file exists so that environments
whose setuptools lacks PEP 660 support (no `wheel` package installed) can
still perform `pip install -e .` through the legacy editable path.
"""

from setuptools import setup

setup()
