"""Primary/backup software-FT baseline (exp id: base-pb).

The related-work alternative [11, 17]: replicate critical tasks in software
on an always-parallel platform. Regenerates the bandwidth-vs-semantics
comparison: PB pays ~2x utilization for protected tasks and provides
*recovery*, while the paper's lock-step slots pay whole-platform replication
and provide *masking*. Benchmarks admission + worst-case simulation.
"""

import pytest

from repro.baselines import pb_schedulable, simulate_pb_worst_case
from repro.core import Overheads, design_platform
from repro.model import Mode
from repro.viz import format_table

from bench_util import report


def test_pb_admission_and_worst_case(benchmark, paper_ts, paper_part, region_edf):
    pb = benchmark(lambda: pb_schedulable(paper_ts))

    assert pb.schedulable
    sims = simulate_pb_worst_case(pb, horizon=120.0)
    misses = sum(len(r.misses) for r in sims)

    flexible = design_platform(
        paper_part, "EDF", Overheads.uniform(0.05), region=region_edf
    )
    ft_u = paper_ts.by_mode(Mode.FT).utilization
    fs_u = paper_ts.by_mode(Mode.FS).utilization

    rows = [
        ["scheme", "extra bandwidth for protection", "fault semantics"],
    ]
    body = format_table(
        ["scheme", "extra bandwidth", "semantics"],
        [
            [
                "primary/backup",
                f"{pb.replication_overhead:.3f} (1x per protected task)",
                "detect + recover (late result)",
            ],
            [
                "lock-step FT slot",
                f"{3 * flexible.allocated_utilization(Mode.FT):.3f} (3 extra cores x alpha_FT)",
                "mask (no wrong output, no delay)",
            ],
            [
                "lock-step FS slots",
                f"{2 * flexible.allocated_utilization(Mode.FS):.3f} (2 extra cores x alpha_FS)",
                "detect + silence",
            ],
        ],
    )
    body += (
        f"\nPB worst-case simulation misses: {misses} "
        f"(all backups executing; 120 time units on 4 cores)\n"
        f"PB replicated utilization: {pb.replicated_utilization:.3f} / 4.0 cores"
    )
    report("BASELINE — primary/backup vs hardware lock-step", body)

    assert misses == 0
    assert pb.replication_overhead == pytest.approx(ft_u + fs_u)
    benchmark.extra_info["pb_overhead"] = round(pb.replication_overhead, 3)
