"""Ablation: scheduler choice (EDF vs RM) on the feasible region (abl-sched).

Figure 4 shows the EDF region strictly containing the RM region for the
paper's task set; this ablation quantifies the gap there and across random
mixed workloads.
"""

import numpy as np
import pytest

from repro.core import FeasibleRegion
from repro.experiments.ablations import edf_vs_rm_regions
from repro.generators import generate_mixed_taskset
from repro.partition import PartitionError, partition_by_modes
from repro.viz import format_table

from bench_util import report


def test_edf_vs_rm_on_paper_set(benchmark):
    rows = benchmark(edf_vs_rm_regions)

    edf, rm = rows
    table = format_table(
        ["algorithm", "max P (Otot=0)", "max admissible Otot"],
        [
            [edf.algorithm, edf.max_period_zero_overhead, edf.max_admissible_overhead],
            [rm.algorithm, rm.max_period_zero_overhead, rm.max_admissible_overhead],
        ],
    )
    table += (
        f"\nEDF/RM max-period ratio: "
        f"{edf.max_period_zero_overhead / rm.max_period_zero_overhead:.3f} "
        f"(paper: 3.176/2.381 = 1.334)"
    )
    report("ABLATION — EDF vs RM feasible regions (paper set)", table)

    assert edf.max_period_zero_overhead > rm.max_period_zero_overhead
    ratio = edf.max_period_zero_overhead / rm.max_period_zero_overhead
    assert ratio == pytest.approx(3.176 / 2.381, abs=0.01)
    benchmark.extra_info["edf_rm_ratio"] = round(ratio, 3)


def test_edf_vs_rm_synthetic_sweep(benchmark):
    """Average region advantage of EDF over random mixed workloads."""

    def sweep():
        ratios = []
        for seed in range(12):
            rng = np.random.default_rng(seed)
            ts = generate_mixed_taskset(
                9, 1.1, rng, period_low=10, period_high=60,
                period_granularity=5.0,
            )
            try:
                part = partition_by_modes(ts, admission="utilization")
            except PartitionError:
                continue
            try:
                edf = FeasibleRegion(part, "EDF").max_feasible_period(0.0)
                rm = FeasibleRegion(part, "RM").max_feasible_period(0.0)
            except (ValueError, RuntimeError):
                continue
            ratios.append(edf / rm)
        return ratios

    ratios = benchmark(sweep)
    assert ratios, "no feasible synthetic workloads"
    body = (
        f"workloads analysed : {len(ratios)}\n"
        f"EDF/RM max-period ratio: mean {np.mean(ratios):.3f}, "
        f"min {np.min(ratios):.3f}, max {np.max(ratios):.3f}"
    )
    report("ABLATION — EDF vs RM across random workloads", body)
    # EDF never loses (optimality) and typically wins.
    assert min(ratios) >= 1.0 - 1e-9
    benchmark.extra_info["mean_ratio"] = round(float(np.mean(ratios)), 3)
