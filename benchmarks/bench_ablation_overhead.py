"""Ablation: sensitivity to the mode-switch overhead (exp id: abl-overhead).

Sweeps the total switching overhead ``O_tot`` and reports the maximum
feasible period — shrinking from the Figure 4 zero-overhead apex down to
infeasibility past the 0.201 maximum.
"""

import pytest

from repro.experiments.ablations import overhead_sensitivity
from repro.viz import format_table

from bench_util import report

OTOTS = (0.0, 0.025, 0.05, 0.1, 0.15, 0.2, 0.201, 0.25)


def test_overhead_sensitivity(benchmark, paper_part):
    points = benchmark(
        lambda: overhead_sensitivity(paper_part, otots=OTOTS)
    )

    table = format_table(
        ["O_tot", "max feasible P", "overhead bandwidth O/P"],
        [
            [
                p.otot,
                p.max_period if p.max_period is not None else "infeasible",
                (p.otot / p.max_period) if p.max_period else "-",
            ]
            for p in points
        ],
    )
    report("ABLATION — max feasible period vs switching overhead", table)

    feasible = [p for p in points if p.max_period is not None]
    periods = [p.max_period for p in feasible]
    # Monotone: more overhead, shorter max period; infeasible past 0.201.
    assert periods == sorted(periods, reverse=True)
    assert points[0].max_period == pytest.approx(3.176, abs=2e-3)
    assert points[-1].max_period is None
    benchmark.extra_info["levels"] = len(OTOTS)
