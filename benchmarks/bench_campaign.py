"""Campaign engine — parallel fan-out of a synthetic schedulability grid.

Benchmarks the ``repro.runner`` process-pool path on a small utilization x
replication grid and asserts the engine's determinism contract: pooled
results are bit-identical to the inline (``workers=1``) run.
"""

from repro.runner import sweep

from bench_util import report

AXES = {"u_total": [0.5, 1.0, 1.5, 2.0], "n": [8], "rep": [0, 1, 2]}


def test_campaign_parallel_determinism(benchmark):
    pooled = benchmark(
        lambda: sweep("schedulability", AXES, workers=2, master_seed=11)
    )
    inline = sweep("schedulability", AXES, workers=1, master_seed=11)

    assert pooled.to_json() == inline.to_json()
    assert pooled.stats.computed == len(pooled.specs)

    accepted = sum(r["feasible"] for r in pooled.results)
    report(
        "CAMPAIGN ENGINE — schedulability grid (12 points, 2 workers)",
        f"accepted {accepted}/{len(pooled.results)} points; "
        f"pooled == inline: {pooled.to_json() == inline.to_json()}",
    )
    benchmark.extra_info["points"] = len(pooled.results)
    benchmark.extra_info["accepted"] = accepted
