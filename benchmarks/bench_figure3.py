"""Figure 3 — the supply function of a mode and its linear bound.

Regenerates the ``Z_k(t)`` staircase of Lemma 1 together with the Eq. 3
bound ``α_k (t − Δ_k)`` for the paper's Table 2(b) FT slot, checks the
figure's structural claims (bound safety + corner tightness), and benchmarks
vectorised supply evaluation.
"""

import numpy as np
import pytest

from repro.supply import LinearSupply, PeriodicSlotSupply, dominates
from repro.viz import render_supply

from bench_util import report

#: Table 2(b) FT slot: P = 2.966, Q̃_FT = 0.820.
P, Q = 2.966, 0.820


def _evaluate(ts):
    exact = PeriodicSlotSupply(P, Q)
    linear = LinearSupply.from_slot(P, Q)
    return exact.supply_array(ts), linear.supply_array(ts)


def test_figure3_supply_function(benchmark):
    ts = np.linspace(0.0, 4 * P, 2001)
    z_exact, z_linear = benchmark(_evaluate, ts)

    exact = PeriodicSlotSupply(P, Q)
    linear = LinearSupply.from_slot(P, Q)
    plot = render_supply(
        {"Z(t) exact (Lemma 1)": exact, "Z'(t) linear (Eq. 3)": linear},
        horizon=4 * P,
        height=18,
    )
    stats = (
        f"alpha = {exact.alpha:.4f}, delta = {exact.delta:.4f} "
        f"(Eq. 2: Q̃/P and P − Q̃ for the Table 2(b) FT slot)"
    )
    report("FIGURE 3 — the supply function", plot + "\n" + stats)

    # Figure 3 claims: Z' <= Z everywhere, touching at the ramp starts.
    assert np.all(z_linear <= z_exact + 1e-9)
    assert dominates(exact, linear, horizon=12 * P)
    for j in range(3):
        corner = (j + 1) * P - Q
        assert linear.supply(corner) == pytest.approx(
            exact.supply(corner), abs=1e-9
        )
    benchmark.extra_info["alpha"] = round(exact.alpha, 4)
    benchmark.extra_info["delta"] = round(exact.delta, 4)
