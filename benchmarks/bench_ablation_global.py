"""Ablation: partitioned vs global scheduling (the paper's deferred study).

Section 3: *"in this paper we focus on the partitioned scheme, whereas the
analysis of global strategies is postponed to future works."* This bench
runs that study on the NF class: acceptance of partitioned-EDF (bin packing)
vs global-EDF (GFB bound) across structured workloads, plus a simulation
cross-check of the global side.
"""

import numpy as np
import pytest

from repro.generators import generate_taskset
from repro.globalsched import compare_nf_strategies, simulate_global
from repro.globalsched.compare import validate_global_by_simulation
from repro.model import Task, TaskSet
from repro.viz import format_table

from bench_util import report


def test_partitioned_vs_global_acceptance(benchmark):
    def sweep():
        buckets = {
            "light (u_i<=0.3)": dict(u_max=0.3, n=10, u=2.4),
            "medium (u_i<=0.6)": dict(u_max=0.6, n=7, u=2.4),
            "heavy (u_i<=0.95)": dict(u_max=0.95, n=5, u=2.4),
        }
        out = []
        for label, cfg in buckets.items():
            part_ok = glob_ok = both = 0
            n_sets = 20
            for seed in range(n_sets):
                rng = np.random.default_rng(seed)
                ts = generate_taskset(
                    cfg["n"], cfg["u"], rng,
                    u_max=cfg["u_max"], period_low=10, period_high=100,
                    period_granularity=5.0,
                    utilization_method="randfixedsum",  # no rejection at tight u_max
                )
                cmp = compare_nf_strategies(ts, 4, admission="utilization")
                part_ok += cmp.partitioned_ok
                glob_ok += cmp.global_ok
                both += cmp.partitioned_ok and cmp.global_ok
            out.append([label, part_ok, glob_ok, both, n_sets])
        return out

    rows = benchmark(sweep)
    table = format_table(
        ["workload class", "partitioned ok", "global(GFB) ok", "both", "sets"],
        rows,
    )
    table += (
        "\nReading: GFB collapses as per-task utilization grows (the Dhall\n"
        "effect), while bin packing degrades gracefully — the quantitative\n"
        "case for the paper's partitioned choice on heavy tasks."
    )
    report("ABLATION — partitioned vs global scheduling (NF class, m=4)", table)

    light, medium, heavy = rows
    # On heavy workloads partitioning must dominate the global bound.
    assert heavy[1] >= heavy[2]
    benchmark.extra_info["heavy_part_ok"] = heavy[1]
    benchmark.extra_info["heavy_glob_ok"] = heavy[2]


def test_global_sim_confirms_gfb(benchmark):
    # The classic Dhall construction on m=4: four light tasks whose earlier
    # deadlines hog all processors, starving one near-saturated task. GFB
    # rejects it, global EDF truly misses, yet *partitioned* EDF schedules
    # it trivially (heavy task alone on one processor).
    dhall = TaskSet(
        [Task(f"l{i}", 0.2, 1.0) for i in range(4)]
        + [Task("heavy", 1.0, 1.05)]
    )
    light = TaskSet([Task(f"t{i}", 1, 10) for i in range(8)])

    def run():
        return (
            validate_global_by_simulation(light, 4),
            simulate_global(dhall, "EDF", 4, [(0.0, 42.0)], 42.0),
        )

    light_ok, dhall_res = benchmark(run)
    from repro.globalsched import global_edf_gfb_test

    part = compare_nf_strategies(dhall, 4, admission="utilization")
    report(
        "ABLATION — global EDF simulation cross-check (Dhall effect)",
        f"light set (U=0.8, m=4): simulation clean = {light_ok}\n"
        f"Dhall set (4 x u=0.2 + 1 x u=0.952, U=1.75 on m=4):\n"
        f"  GFB accepts      : {global_edf_gfb_test(dhall, 4)}\n"
        f"  global EDF misses: {len(dhall_res.misses)} "
        f"(migrations {dhall_res.migrations()})\n"
        f"  partitioned EDF  : {part.partitioned_ok}",
    )
    assert light_ok
    assert dhall_res.misses            # global EDF genuinely fails
    assert part.partitioned_ok         # partitioning handles it trivially
    assert not global_edf_gfb_test(dhall, 4)
