"""Ablation: release jitter (the generalisation the paper mentions).

"the previous formulation also applies to task set with static offset and
jitter" (Section 3.2). This bench quantifies the cost of jitter on the
paper's own FT class: how the minimum quantum and the maximum feasible
period degrade as all FT tasks acquire increasing release jitter.
"""

import numpy as np
import pytest

from repro.core import min_quantum, min_quantum_jitter
from repro.experiments import paper_taskset
from repro.model import Mode, TaskSet
from repro.viz import format_table

from bench_util import report

JITTERS = (0.0, 0.5, 1.0, 2.0, 4.0)


def test_jitter_degrades_minimum_quantum(benchmark, paper_ts):
    ft = paper_ts.by_mode(Mode.FT)
    period = 2.966  # the Table 2(b) design period

    def sweep():
        out = []
        for j in JITTERS:
            jittered = TaskSet(t.replace(jitter=j) for t in ft)
            out.append(
                (
                    j,
                    min_quantum_jitter(jittered, "EDF", period),
                    min_quantum_jitter(jittered, "RM", period),
                )
            )
        return out

    rows = benchmark(sweep)

    base = min_quantum(ft, "EDF", period)
    table = format_table(
        ["jitter J", "minQ EDF", "minQ RM", "EDF growth vs J=0"],
        [
            [j, q_edf, q_rm, f"{100 * (q_edf / base - 1):.1f}%"]
            for j, q_edf, q_rm in rows
        ],
    )
    table += (
        f"\n(FT class of Table 1 at the design period P = {period}; "
        f"jitter-free minQ = {base:.4f})"
    )
    report("ABLATION — release jitter inflates the required quantum", table)

    qs = [q for _j, q, _r in rows]
    assert qs == sorted(qs)  # monotone in jitter
    assert rows[0][1] == pytest.approx(base)  # J=0 degenerates exactly
    assert all(q_rm >= q_edf - 1e-9 for _j, q_edf, q_rm in rows)
    benchmark.extra_info["minQ_J0"] = round(qs[0], 4)
    benchmark.extra_info["minQ_J4"] = round(qs[-1], 4)
