"""Table 1 — the task-set data and Section 4 manual partition.

Regenerates the paper's input table (modes, C_i, T_i) together with the
derived per-bin utilizations the paper's sanity check relies on, and
benchmarks the model layer (task-set + partition construction).
"""

import pytest

from repro.experiments import paper_partition, paper_taskset
from repro.model import MODE_ORDER
from repro.viz import format_table

from bench_util import report


def _build():
    ts = paper_taskset()
    part = paper_partition()
    return ts, part


def test_table1_taskset(benchmark):
    ts, part = benchmark(_build)

    assert len(ts) == 13
    rows = [
        [t.mode, t.name, int(t.wcet), int(t.period), round(t.utilization, 4)]
        for t in ts
    ]
    body = format_table(["mode", "task", "C_i", "T_i", "U_i"], rows)
    bin_rows = []
    for mode in MODE_ORDER:
        for i, b in enumerate(part.bins(mode)):
            if len(b):
                bin_rows.append(
                    [f"{mode}[{i}]", ", ".join(b.names), b.utilization]
                )
    body += "\n\nmanual partition (Section 4):\n"
    body += format_table(["processor", "tasks", "U"], bin_rows)
    report("TABLE 1 — task set data + manual partition", body)

    benchmark.extra_info["n_tasks"] = len(ts)
    benchmark.extra_info["U_total"] = round(ts.utilization, 4)
    # Reproduction guard: the utilizations behind Table 2 row (a).
    assert part.max_bin_utilization(MODE_ORDER[0]) == pytest.approx(0.267, abs=5e-4)
    assert part.max_bin_utilization(MODE_ORDER[1]) == pytest.approx(0.267, abs=5e-4)
    assert part.max_bin_utilization(MODE_ORDER[2]) == pytest.approx(0.250, abs=5e-4)
