"""Figure 4 — the feasible-period region for EDF and RM.

Regenerates the plotted curves (Eq. 15 LHS vs ``P``) and the five annotated
points, renders the figure in ASCII, asserts the points at the paper's
3-decimal precision, and benchmarks the vectorised region sweep. The five
points run as ``figure4-point`` campaign specs through
:func:`repro.runner.run_campaign`.
"""

import numpy as np
import pytest

from repro.experiments import compute_figure4_points, figure4_series, paper_reference
from repro.viz import render_region

from bench_util import report


def test_figure4_region_sweep(benchmark):
    series = benchmark(figure4_series, p_max=3.5, n=701)

    points = compute_figure4_points()
    ref = paper_reference()

    plot = render_region(
        series["P"],
        {"EDF": series["EDF"], "RM": series["RM"]},
        otot=0.05,
        width=90,
        height=24,
    )
    notes = "\n".join(
        [
            f"point 1  max P, EDF, Otot=0    : {points.point1_max_period_edf:.3f}  (paper 3.176)",
            f"point 2  max P, RM,  Otot=0    : {points.point2_max_period_rm:.3f}  (paper 2.381)",
            f"point 3  max Otot, EDF         : {points.point3_max_overhead_edf:.3f}  (paper 0.201)",
            f"point 4  max Otot, RM          : {points.point4_max_overhead_rm:.3f}  (paper 0.129)",
            f"point 5  max P, EDF, Otot=0.05 : {points.point5_max_period_edf_otot:.3f}  (paper 2.966)",
        ]
    )
    report("FIGURE 4 — determining the feasible periods", plot + "\n\n" + notes)

    assert points.point1_max_period_edf == pytest.approx(
        ref.max_period_edf_zero_overhead, abs=1.5e-3
    )
    assert points.point2_max_period_rm == pytest.approx(
        ref.max_period_rm_zero_overhead, abs=1.5e-3
    )
    assert points.point3_max_overhead_edf == pytest.approx(
        ref.max_overhead_edf, abs=1.5e-3
    )
    assert points.point4_max_overhead_rm == pytest.approx(
        ref.max_overhead_rm, abs=1.5e-3
    )
    assert points.point5_max_period_edf_otot == pytest.approx(
        ref.max_period_edf_otot, abs=1.5e-3
    )
    # Shape guard: EDF dominates RM across the whole sweep.
    assert np.all(series["EDF"] >= series["RM"] - 1e-9)

    benchmark.extra_info.update(
        {
            "p1_edf(3.176)": round(points.point1_max_period_edf, 4),
            "p2_rm(2.381)": round(points.point2_max_period_rm, 4),
            "p3_edf(0.201)": round(points.point3_max_overhead_edf, 4),
            "p4_rm(0.129)": round(points.point4_max_overhead_rm, 4),
            "p5_edf(2.966)": round(points.point5_max_period_edf_otot, 4),
        }
    )
