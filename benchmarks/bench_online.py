"""Event-dispatch throughput: the event-driven core vs the fixed-step loop.

The simulation stack now routes every offline and online occurrence —
arrivals, departures, fault strikes, core deaths, re-assignments —
through :class:`repro.sim.events.EventQueue`. The pre-refactor simulator
instead *stepped*: it advanced a clock in fixed increments and scanned
for occurrences that had come due. This benchmark measures events/sec of
both dispatch strategies on an offline-shaped workload (every task
arriving at t=0 plus a Poisson fault stream, exactly what
``MulticoreSim.run`` feeds the queue), and gates on determinism:

* the fixed-step reference must deliver the **identical** event sequence
  the queue drains — same times, same kinds, same payload order;
* repeated offline simulations through the event core must produce
  bit-identical results (hashed over jobs, slices, trace and fault
  records).

Standalone on purpose (no pytest-benchmark dependency), so CI can run it
as a smoke step and the events/sec table lands in the job log:

    PYTHONPATH=src python benchmarks/bench_online.py --smoke

Exit code is non-zero when either determinism gate fails. No wall-clock
gate: shared-runner timing is too noisy to fail CI on.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time

import numpy as np

from repro.core import Overheads, design_platform
from repro.dependability import scenario_from_params
from repro.experiments.paper import paper_partition
from repro.runner.spec import canonical_json
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.multicore import MulticoreSim

from bench_util import write_bench_json

#: Fixed-step quantum of the reference loop, as a fraction of the mean
#: inter-event gap — fine enough that steps rarely deliver two events.
STEP_FRACTION = 0.25


def offline_event_stream(n_events: int, seed: int) -> list[Event]:
    """An offline-shaped stream: arrivals at t=0, then scenario strikes.

    One eighth of the stream is the t=0 arrival burst (the offline
    simulator pushes every task up front); the rest is a Poisson fault
    stream over the horizon, the dominant event source of a long
    fault-injection run.
    """
    arrivals = max(1, n_events // 8)
    events = [
        Event(0.0, EventKind.ARRIVAL, data=i) for i in range(arrivals)
    ]
    horizon = 1000.0
    strikes = n_events - arrivals
    scenario = scenario_from_params(
        {"scenario": "poisson", "rate": strikes / horizon,
         "min_separation": 0.0}
    )
    faults = scenario.generate(
        horizon, np.random.default_rng(seed), core_count=4
    )
    events.extend(
        Event(f.time, EventKind.FAULT_STRIKE, data=f) for f in faults
    )
    return events


def dispatch_event_core(events: list[Event]) -> tuple[float, list[Event]]:
    """Push + drain through the shared EventQueue; (elapsed, delivered)."""
    start = time.perf_counter()
    queue = EventQueue()
    for ev in events:
        queue.push(ev)
    delivered = list(queue.drain())
    return time.perf_counter() - start, delivered


def dispatch_fixed_step(events: list[Event]) -> tuple[float, list[Event]]:
    """The pre-refactor strategy: advance a clock in fixed increments,
    delivering everything due at each step; (elapsed, delivered)."""
    start = time.perf_counter()
    pending = sorted(
        enumerate(events), key=lambda p: (p[1].time, int(p[1].kind), p[0])
    )
    last = pending[-1][1].time if pending else 0.0
    dt = max(last / len(pending), 1e-9) * STEP_FRACTION if pending else 1.0
    delivered: list[Event] = []
    cursor, now = 0, 0.0
    while cursor < len(pending):
        while cursor < len(pending) and pending[cursor][1].time <= now:
            delivered.append(pending[cursor][1])
            cursor += 1
        now += dt
    return time.perf_counter() - start, delivered


def offline_result_digest() -> str:
    """Hash of a full table2-shaped offline run through the event core."""
    part = paper_partition()
    config = design_platform(
        part, "EDF", Overheads.uniform(0.05), "min-overhead-bandwidth"
    )
    result = MulticoreSim(part, config).run(config.period * 8)
    payload = {
        "jobs": {
            key: [
                [j.name, str(j.state), j.release, j.remaining,
                 j.completion_time]
                for j in res.jobs
            ]
            for key, res in sorted(result.processors.items())
        },
        "slices": {
            key: [[s.processor, s.job, s.start, s.end]
                  for s in res.trace.slices]
            for key, res in sorted(result.processors.items())
        },
        "trace": [
            [e.time, str(e.kind), e.who, e.detail]
            for e in result.trace.events
        ],
        "faults": [
            [r.fault.time, r.fault.core, str(r.outcome)]
            for r in result.fault_records
        ],
    }
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events", type=int, default=200_000,
        help="events in the largest stream (default: 200000)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: 20k events, same gates, small wall-clock",
    )
    args = parser.parse_args(argv)
    top = 20_000 if args.smoke else args.events
    sizes = [top // 10, top]

    failed = False
    rates: dict[str, dict[str, float]] = {}
    print("event dispatch throughput (offline-shaped stream)")
    print(
        f"{'events':>8}  {'queue ev/s':>12}  {'fixed-step ev/s':>15}  "
        f"{'speedup':>7}"
    )
    for n in sizes:
        stream = offline_event_stream(n, seed=11)
        q_elapsed, q_delivered = dispatch_event_core(stream)
        s_elapsed, s_delivered = dispatch_fixed_step(stream)
        same = [
            (ev.time, ev.kind, id(ev.data)) for ev in q_delivered
        ] == [
            (ev.time, ev.kind, id(ev.data)) for ev in s_delivered
        ]
        failed = failed or not same
        tag = "" if same else "  DELIVERY ORDER DIVERGED"
        rates[str(len(stream))] = {
            "queue_events_per_sec": round(len(stream) / q_elapsed, 1),
            "fixed_step_events_per_sec": round(len(stream) / s_elapsed, 1),
            "speedup": round(s_elapsed / q_elapsed, 3),
        }
        print(
            f"{len(stream):>8}  {len(stream) / q_elapsed:>12.0f}  "
            f"{len(stream) / s_elapsed:>15.0f}  "
            f"{s_elapsed / q_elapsed:>6.2f}x{tag}"
        )

    digests = {offline_result_digest() for _ in range(2)}
    if len(digests) != 1:
        print("FAIL: repeated offline runs are not bit-identical")
        failed = True
    else:
        print(f"offline sim determinism: ok ({digests.pop()[:16]}…)")
    write_bench_json(
        "online",
        config={"events": top, "smoke": args.smoke},
        dispatch=rates,
        deterministic=not failed,
    )
    if failed:
        print("FAIL: determinism gate")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
