"""Ablation: manual vs automatic partitioning (exp id: abl-partition).

The paper assigns tasks to processors manually and cites bin-packing for
automation. This ablation runs the cited piece: how close do first/best/
worst-fit come to the paper's manual split, measured on the resulting
feasible region?
"""

import pytest

from repro.experiments.ablations import partitioning_comparison
from repro.viz import format_table

from bench_util import report


def test_partition_heuristics_vs_manual(benchmark):
    rows = benchmark(
        lambda: partitioning_comparison(
            heuristics=("worst-fit", "first-fit", "best-fit")
        )
    )

    table = format_table(
        ["strategy", "max P (Otot=0)", "max Otot", "maxU NF", "maxU FS"],
        [
            [
                r.strategy,
                r.max_period_zero_overhead if r.feasible else "infeasible",
                r.max_admissible_overhead,
                r.max_bin_utilization["NF"],
                r.max_bin_utilization["FS"],
            ]
            for r in rows
        ],
    )
    table += (
        "\nNote: greedy packers (first/best-fit) concentrate load until the\n"
        "summed per-mode demand ratios exceed 1 — no period is feasible.\n"
        "This is the quantitative case for load-balancing (worst-fit) here."
    )
    report("ABLATION — partitioning strategies vs the manual Section 4 split", table)

    manual = rows[0]
    wf = next(r for r in rows if r.strategy == "worst-fit")
    # Worst-fit decreasing balances at least as well as the manual split on
    # the binding NF mode (tau5's 0.25 bin cannot be improved).
    assert wf.max_bin_utilization["NF"] <= manual.max_bin_utilization["NF"] + 1e-9
    # The balanced strategies must admit a region; greedy ones may not.
    assert manual.feasible and wf.feasible
    benchmark.extra_info["best_strategy"] = max(
        rows, key=lambda r: r.max_admissible_overhead
    ).strategy
    benchmark.extra_info["infeasible_strategies"] = [
        r.strategy for r in rows if not r.feasible
    ]
