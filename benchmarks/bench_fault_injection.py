"""Fault-injection campaign (exp id: sim-faults).

Quantifies the Section 2.2 mode contracts on the Table 2(b) design: faults
in FT slots are masked, FS faults are detected and silenced (no wrong output
escapes), NF faults corrupt silently, slot-switch/idle faults are harmless.
Benchmarks the campaign driver.
"""

import pytest

from repro.faults import FaultCampaign, FaultOutcome
from repro.model import Mode
from repro.viz import format_table

from bench_util import report


def test_fault_campaign_mode_contracts(benchmark, paper_part, config_b):
    camp = FaultCampaign(paper_part, config_b, rate=0.1)

    result = benchmark(lambda: camp.run(horizon=config_b.period * 81, seed=7))

    rows = []
    for mode, hist in sorted(
        result.outcomes_by_mode.items(), key=lambda kv: str(kv[0])
    ):
        rows.append(
            [
                str(mode) if mode else "overhead/idle",
                hist[FaultOutcome.MASKED],
                hist[FaultOutcome.SILENCED],
                hist[FaultOutcome.CORRUPTED],
                hist[FaultOutcome.HARMLESS],
            ]
        )
    body = format_table(
        ["slot hit", "masked", "silenced", "corrupted", "harmless"], rows
    )
    body += "\n\n" + result.summary()
    report("FAULT INJECTION — per-mode outcome contracts", body)

    by_mode = result.outcomes_by_mode
    if Mode.FT in by_mode:
        assert by_mode[Mode.FT][FaultOutcome.CORRUPTED] == 0
        assert by_mode[Mode.FT][FaultOutcome.SILENCED] == 0
    if Mode.FS in by_mode:
        assert by_mode[Mode.FS][FaultOutcome.CORRUPTED] == 0
    assert result.ft_misses == 0
    benchmark.extra_info["injected"] = result.injected
    benchmark.extra_info["masked"] = result.outcomes[FaultOutcome.MASKED]


def test_fault_rate_sweep(benchmark, paper_part, config_b):
    """Corruption exposure grows with fault rate only through NF slots.

    The former ad-hoc serial loop now runs as a ``fault-injection`` grid
    through the campaign engine — per-rate results are deterministic in the
    campaign master seed and identical for any worker count.
    """
    from repro.runner import sweep

    campaign = benchmark(
        lambda: sweep(
            "fault-injection",
            {"rate": [0.02, 0.05, 0.1, 0.2]},
            base_params={"cycles": 41},
            master_seed=3,
        )
    )

    rows = [
        [
            spec.params["rate"],
            res["injected"],
            res["outcome_rates"]["masked"],
            res["outcome_rates"]["silenced"],
            res["outcome_rates"]["corrupted"],
            res["ft_misses"],
        ]
        for spec, res in campaign.rows()
    ]
    report(
        "FAULT RATE SWEEP — outcome shares vs Poisson rate",
        format_table(
            ["rate", "injected", "masked%", "silenced%", "corrupt%", "FT misses"],
            rows,
        ),
    )
    assert all(res["ft_misses"] == 0 for res in campaign.results)
