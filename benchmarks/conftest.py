"""Shared fixtures and reporting for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (tables,
figures) or an ablation indexed in DESIGN.md. Regenerated numbers are

* asserted against the paper's published values (reproduction guard),
* attached to the benchmark record via ``benchmark.extra_info``,
* printed through :func:`report` — which writes to the *real* stdout so the
  paper-style tables survive pytest's capture and land in
  ``bench_output.txt`` when run as
  ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``.
"""

from __future__ import annotations

import pytest

from repro.core import FeasibleRegion, Overheads, design_platform
from repro.experiments import paper_partition, paper_taskset

from bench_util import emit_reports


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Flush the regenerated paper artifacts after capture has ended."""
    emit_reports(terminalreporter.write_line)


@pytest.fixture(scope="session")
def paper_ts():
    return paper_taskset()


@pytest.fixture(scope="session")
def paper_part():
    return paper_partition()


@pytest.fixture(scope="session")
def region_edf(paper_part):
    return FeasibleRegion(paper_part, "EDF")


@pytest.fixture(scope="session")
def region_rm(paper_part):
    return FeasibleRegion(paper_part, "RM")


@pytest.fixture(scope="session")
def config_b(paper_part, region_edf):
    return design_platform(
        paper_part, "EDF", Overheads.uniform(0.05),
        "min-overhead-bandwidth", region=region_edf,
    )


@pytest.fixture(scope="session")
def config_c(paper_part, region_edf):
    return design_platform(
        paper_part, "EDF", Overheads.uniform(0.05),
        "max-slack", region=region_edf,
    )
