"""Shared fixtures and reporting for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (tables,
figures) or an ablation indexed in DESIGN.md. Regenerated numbers are

* asserted against the paper's published values (reproduction guard),
* attached to the benchmark record via ``benchmark.extra_info``,
* printed through :func:`report` — which writes to the *real* stdout so the
  paper-style tables survive pytest's capture and land in
  ``bench_output.txt`` when run as
  ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import pytest

from repro.core import FeasibleRegion, Overheads, design_platform
from repro.experiments import paper_partition, paper_taskset

from bench_util import emit_reports, write_bench_json


def _emit_bench_json(config) -> list[Path]:
    """One ``BENCH_<module>.json`` per pytest-benchmark module.

    The standalone scripts write their own files from ``main()``; this
    hook covers the pytest-benchmark modules so *every* ``bench_*.py``
    leaves a machine-readable result behind.
    """
    session = getattr(config, "_benchmarksession", None)
    benchmarks = getattr(session, "benchmarks", None) if session else None
    if not benchmarks:
        return []
    by_module: dict[str, dict[str, Any]] = {}
    for bench in benchmarks:
        fullname = getattr(bench, "fullname", "") or ""
        stem = Path(fullname.split("::", 1)[0]).stem
        name = stem[len("bench_"):] if stem.startswith("bench_") else stem
        if not name:
            continue
        stats = getattr(bench, "stats", None)
        record: dict[str, Any] = {}
        for field in ("min", "max", "mean", "stddev", "median", "rounds"):
            value = getattr(stats, field, None)
            if isinstance(value, (int, float)):
                record[field] = value
        extra = getattr(bench, "extra_info", None)
        if extra:
            record["extra_info"] = dict(extra)
        test = getattr(bench, "name", None) or fullname
        by_module.setdefault(name, {})[test] = record
    return [
        write_bench_json(name, **tests)
        for name, tests in sorted(by_module.items())
    ]


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Flush the regenerated paper artifacts after capture has ended."""
    emit_reports(terminalreporter.write_line)
    try:
        written = _emit_bench_json(config)
    except Exception as exc:  # noqa: BLE001 - reporting must not fail the run
        terminalreporter.write_line(f"[bench-json] emit failed: {exc}")
        return
    for path in written:
        terminalreporter.write_line(f"[bench-json] wrote {path}")


@pytest.fixture(scope="session")
def paper_ts():
    return paper_taskset()


@pytest.fixture(scope="session")
def paper_part():
    return paper_partition()


@pytest.fixture(scope="session")
def region_edf(paper_part):
    return FeasibleRegion(paper_part, "EDF")


@pytest.fixture(scope="session")
def region_rm(paper_part):
    return FeasibleRegion(paper_part, "RM")


@pytest.fixture(scope="session")
def config_b(paper_part, region_edf):
    return design_platform(
        paper_part, "EDF", Overheads.uniform(0.05),
        "min-overhead-bandwidth", region=region_edf,
    )


@pytest.fixture(scope="session")
def config_c(paper_part, region_edf):
    return design_platform(
        paper_part, "EDF", Overheads.uniform(0.05),
        "max-slack", region=region_edf,
    )
