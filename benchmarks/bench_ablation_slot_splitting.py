"""Ablation: multi-quantum slots (the paper's future-work item).

"...the possibility of providing the same fault-tolerance service during
more than one time quantum per period" (Section 5). Splitting a mode's
budget into k evenly spread slots divides the worst-case supply delay by k,
which directly enlarges the set of schedulable short-deadline tasks.
"""

import pytest

from repro.analysis import edf_schedulable_supply
from repro.experiments.ablations import slot_splitting_gain
from repro.model import Task, TaskSet
from repro.supply.slots import evenly_split_slots
from repro.viz import format_table

from bench_util import report


def test_slot_splitting_shrinks_delay(benchmark):
    rows = benchmark(
        lambda: slot_splitting_gain(period=3.0, budget=1.0, pieces_list=(1, 2, 3, 4))
    )

    table = format_table(
        ["quanta per period", "supply delay Δ", "Z(P/2)"],
        [[r.pieces, r.delay, r.supply_at_half_period] for r in rows],
    )

    # A short-deadline task that only the split layouts can host:
    tight = TaskSet([Task("tight", wcet=0.2, period=3.0, deadline=1.2)])
    verdicts = []
    for k in (1, 2, 3, 4):
        supply = evenly_split_slots(3.0, 1.0, k)
        verdicts.append(
            (k, edf_schedulable_supply(tight, supply).schedulable)
        )
    table += "\n\nshort-deadline task (C=0.2, D=1.2) schedulable?\n"
    table += format_table(["pieces", "schedulable"], [[k, v] for k, v in verdicts])
    report("ABLATION — future work: several quanta per period", table)

    delays = [r.delay for r in rows]
    assert delays == sorted(delays, reverse=True)
    assert not verdicts[0][1]  # single slot: Δ = 2.0 > D − C
    assert verdicts[-1][1]     # four slots: Δ = 0.5, fits easily
    benchmark.extra_info["delay_1"] = delays[0]
    benchmark.extra_info["delay_4"] = delays[-1]
