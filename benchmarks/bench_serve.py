"""Query-cache latency for ``repro serve``: cold vs cached answers.

The server memoizes every typed query in a content-addressed cache
(:class:`repro.reporting.QueryCache`, keyed by the aggregate state's
sha256 plus the canonical query parameters), surfacing the decision in
the ``X-Cache: hit|miss`` response header. This script builds a sched
snapshot, uploads it to an in-thread server, and times the same curve
query cold and repeated — reporting the latency split and gating the
observable contract: the repeat must be a hit, and hit and miss bodies
must be byte-identical.

Standalone on purpose (stdlib HTTP client, no pytest-benchmark), so CI
can run it as a smoke step and the table lands in the job log:

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke

Exit code 1 when a repeated query misses the cache or the cached bytes
differ from the cold answer's (never acceptable — that would mean the
cache changes what clients see).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request

from repro.runner import stream_campaign
from repro.runner.presets import get_preset
from repro.server import ReproServer

from bench_util import write_bench_json

#: Enough points for a multi-series curve, few enough to build in seconds.
SMOKE_AXES = {"u_total": [0.5, 1.0, 1.5], "n": [4], "rep": [0, 1]}
DEFAULT_AXES = {
    "u_total": [0.5, 1.0, 1.5, 2.0, 2.5],
    "n": [4, 8],
    "rep": [0, 1, 2, 3],
}

QUERIES = [
    "/report",
    "/query/summary",
    "/query/curve?metric=acceptance_feasible&axis=u_total",
    "/query/curve?metric=weighted_feasible&axis=u_total",
]


def _request(port: int, path: str, body: "bytes | None" = None):
    url = f"http://127.0.0.1:{port}{path}"
    req = urllib.request.Request(
        url, data=body, method="POST" if body is not None else "GET"
    )
    start = time.perf_counter()
    with urllib.request.urlopen(req, timeout=30) as resp:
        payload = resp.read()
        cache = resp.headers.get("X-Cache", "-")
    return payload, cache, time.perf_counter() - start


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="cached-query repetitions per endpoint (default: 5)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast run for CI logs",
    )
    args = parser.parse_args(argv)
    axes = SMOKE_AXES if args.smoke else DEFAULT_AXES

    preset = get_preset("sched")
    aggregator = preset.aggregator()
    build_start = time.perf_counter()
    stream_campaign(preset.specs(axes), aggregator, workers=1)
    build = time.perf_counter() - build_start

    import tempfile
    from pathlib import Path

    from repro.runner import save_snapshot

    server = ReproServer(workers=1)
    _host, port, stop = server.start_in_thread()
    try:
        with tempfile.TemporaryDirectory() as tmp:
            snap_path = Path(tmp) / "snap.json"
            save_snapshot(
                snap_path, aggregator, 0,
                {s.digest for s in preset.specs(axes)},
            )
            body = snap_path.read_bytes()
        upload, _cache, _t = _request(
            port, "/snapshots?preset=sched", body=body
        )
        digest = json.loads(upload)["snapshot"]
        base = f"/snapshots/{digest}"
        points = sum(len(s) for s in axes.values())
        print(
            f"serve query cache — sched snapshot "
            f"({points} axis values, built in {build:.1f}s), "
            f"{args.repeats} repeats per query"
        )
        print(f"{'query':<52} {'cold':>9} {'cached':>9} {'speedup':>8}")
        failures = 0
        timings: dict[str, dict[str, float]] = {}
        for path in QUERIES:
            cold_body, cold_cache, cold_t = _request(port, base + path)
            cached = []
            for _ in range(args.repeats):
                hit_body, hit_cache, hit_t = _request(port, base + path)
                cached.append(hit_t)
                if hit_cache != "hit":
                    print(f"FAIL: repeat of {path} was {hit_cache!r}, not hit")
                    failures += 1
                if hit_body != cold_body:
                    print(f"FAIL: cached bytes differ for {path}")
                    failures += 1
            best = min(cached)
            timings[path] = {
                "cold_ms": round(cold_t * 1e3, 3),
                "cached_ms": round(best * 1e3, 3),
                "speedup": round(cold_t / best, 2),
            }
            print(
                f"{path:<52} {cold_t * 1e3:>7.2f}ms {best * 1e3:>7.2f}ms "
                f"{cold_t / best:>7.1f}x"
            )
            if cold_cache != "miss":
                print(f"FAIL: first query of {path} was {cold_cache!r}")
                failures += 1
        stats = json.loads(_request(port, "/stats")[0])["query_cache"]
        print(
            f"cache: {stats['entries']} entries, {stats['hits']} hits, "
            f"{stats['misses']} misses"
        )
        write_bench_json(
            "serve",
            config={"repeats": args.repeats, "smoke": args.smoke},
            build_seconds=round(build, 3),
            queries=timings,
            query_cache=stats,
            failures=failures,
        )
        if failures:
            return 1
    finally:
        stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
