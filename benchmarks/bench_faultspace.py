"""Faultspace throughput: dependability points/sec through the pool engine.

A faultspace point is the heaviest campaign point in the repository — task
set generation, partitioning, platform design, scenario fault generation
and a full multicore simulation — so this benchmark starts the perf
trajectory for fault-campaign throughput: points/sec of a fixed
dependability grid at several worker counts, verifying along the way that
every run folds to the byte-identical aggregate (the determinism contract
is free to check here and never acceptable to lose).

Standalone on purpose (no pytest-benchmark dependency), so CI can run it
as a smoke step and the points/sec table lands in the job log:

    PYTHONPATH=src python benchmarks/bench_faultspace.py --smoke

Exit code is non-zero when any run's aggregate bytes diverge from the
single-worker run.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.faultspace import faultspace_aggregator, faultspace_specs
from repro.runner import stream_campaign

from bench_util import write_bench_json

#: Cheap-but-real dependability axes: small generated sets, short horizons,
#: one scenario per arrival-process family.
BENCH_AXES = {
    "u_total": [0.8],
    "rate": [0.02, 0.05],
    "scenario": ["poisson", "bursty", "intermittent", "permanent"],
    "n": [6],
    "cycles": [10],
}

WORKER_COUNTS = (1, 2, 4)


def run_once(reps: int, workers: int) -> tuple[float, float, int, str]:
    """One sweep; returns (points/sec, elapsed, points, aggregate bytes)."""
    specs = faultspace_specs({**BENCH_AXES, "rep": list(range(reps))})
    aggregator = faultspace_aggregator()
    start = time.perf_counter()
    result = stream_campaign(
        specs, aggregator, workers=workers, master_seed=5, on_error="store"
    )
    elapsed = time.perf_counter() - start
    return len(specs) / elapsed, elapsed, len(specs), result.aggregate_json()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--reps", type=int, default=10,
        help="replications per grid cell (default: 10)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: 2 reps, same checks, small wall-clock",
    )
    args = parser.parse_args(argv)
    reps = 2 if args.smoke else args.reps

    print(f"faultspace throughput ({reps} reps/cell)")
    print(f"{'workers':>8}  {'points':>7}  {'elapsed':>8}  {'points/sec':>10}")
    baseline: str | None = None
    diverged = False
    rates: dict[str, float] = {}
    for workers in WORKER_COUNTS:
        pps, elapsed, points, agg = run_once(reps, workers)
        if baseline is None:
            baseline = agg
        identical = agg == baseline
        diverged = diverged or not identical
        tag = "" if identical else "  AGGREGATE BYTES DIVERGED"
        rates[str(workers)] = round(pps, 1)
        print(
            f"{workers:>8}  {points:>7}  {elapsed:>7.2f}s  {pps:>10.1f}{tag}"
        )
    write_bench_json(
        "faultspace",
        config={"reps": reps, "smoke": args.smoke},
        points_per_sec_by_workers=rates,
        aggregates_identical=not diverged,
    )
    if diverged:
        print("FAIL: aggregates are not bit-identical across worker counts")
        return 1
    print("aggregates bit-identical across all worker counts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
