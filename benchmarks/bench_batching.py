"""Batched-execution throughput: points/sec of the pool engine vs batch size.

On cheap points the per-task cost of ``ProcessPoolExecutor`` — pickling a
payload, waking a worker, pickling the result back — dominates wall-clock,
which is exactly the scaling gap batching closes: one pool task carries a
whole batch, so the IPC overhead is amortized over ``batch_size`` points.
This script measures points/sec of the same cheap-point sweep at a range of
batch sizes (including the auto-sizing default) and verifies along the way
that every batched run folds to the byte-identical aggregate.

Standalone on purpose (no pytest-benchmark dependency), so CI can run it as
a smoke step and the points/sec table lands in the job log:

    PYTHONPATH=src python benchmarks/bench_batching.py --smoke

Exit code is non-zero when any batched run's aggregate bytes diverge from
the batch-1 run (never acceptable), or when ``--min-speedup`` is given and
the measured batch-64-vs-1 speedup falls short. The speedup gate is opt-in
because wall-clock ratios flake on loaded shared runners; run it locally
(`--min-speedup 3` is the acceptance bar) rather than in CI.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.runner import Aggregator, grid_specs, mean_metric, stream_campaign

from bench_util import write_bench_json

#: The cheap point: one supply-delay evaluation (pure closed-form math), so
#: per-task IPC overhead — not the experiment — is what gets measured. The
#: free ``rep`` axis makes every point a distinct spec/digest, like a real
#: replication sweep.
CHEAP_AXES = {"period": [3.0], "budget": [1.0], "pieces": [1]}

BATCH_SIZES: tuple[int | None, ...] = (1, 16, 64, 256, None)


def run_once(
    points: int, workers: int, batch: int | None
) -> tuple[float, float, str, int]:
    """One sweep; returns (points/sec, elapsed, aggregate bytes, batches)."""
    specs = grid_specs(
        "ablate-slot-split", {**CHEAP_AXES, "rep": list(range(points))}
    )
    aggregator = Aggregator([mean_metric("delay", "delay")])
    start = time.perf_counter()
    result = stream_campaign(
        specs, aggregator, workers=workers, batch_size=batch
    )
    elapsed = time.perf_counter() - start
    return points / elapsed, elapsed, result.aggregate_json(), result.stats.batches


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=20_000,
        help="points per sweep (default: 20000)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="process-pool size (default: 2)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast run for CI logs (3000 points)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail unless batch-64 points/sec >= X * batch-1 points/sec",
    )
    args = parser.parse_args(argv)
    points = 3_000 if args.smoke else args.points

    print(
        f"batched execution throughput — {points} cheap points "
        f"(ablate-slot-split), {args.workers} workers"
    )
    print(f"{'batch':>6}  {'tasks':>6}  {'elapsed':>9}  {'points/sec':>11}")
    rates: dict[int | None, float] = {}
    baseline_agg: str | None = None
    for batch in BATCH_SIZES:
        rate, elapsed, agg, batches = run_once(points, args.workers, batch)
        rates[batch] = rate
        if baseline_agg is None:
            baseline_agg = agg
        elif agg != baseline_agg:
            print(f"FATAL: batch={batch} changed the aggregate bytes")
            return 2
        label = "auto" if batch is None else str(batch)
        print(f"{label:>6}  {batches:>6}  {elapsed:>8.2f}s  {rate:>11.0f}")

    speedup = rates[64] / rates[1]
    print(
        f"speedup batch 64 vs 1: {speedup:.1f}x  "
        f"(auto vs 1: {rates[None] / rates[1]:.1f}x); "
        f"aggregates bit-identical across all batch sizes"
    )
    write_bench_json(
        "batching",
        config={"points": points, "workers": args.workers},
        points_per_sec={
            "auto" if b is None else str(b): round(r, 1)
            for b, r in rates.items()
        },
        speedup_64_vs_1=round(speedup, 3),
        speedup_auto_vs_1=round(rates[None] / rates[1], 3),
        aggregates_identical=True,
    )
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.1f}x below required "
            f"{args.min_speedup:.1f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
