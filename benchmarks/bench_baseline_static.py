"""Static lock-step baselines vs the flexible scheme (exp id: base-static).

The paper's motivating claim (Sections 1–2): a statically configured
platform either cannot schedule the mixed task set (ALL-FT) or fails to
protect the critical tasks (ALL-FS / ALL-NF); the flexible time-partitioned
scheme does both. Regenerated as a comparison table over the Table 1 set
and a synthetic sweep.
"""

import numpy as np
import pytest

from repro.baselines import StaticKind, compare_with_flexible
from repro.core import Overheads
from repro.generators import generate_mixed_taskset
from repro.viz import format_table

from bench_util import report


def test_static_vs_flexible_on_paper_set(benchmark, paper_ts):
    out = benchmark(
        lambda: compare_with_flexible(paper_ts, "EDF", Overheads.uniform(0.05))
    )

    rows = []
    for key, rep in out.items():
        acceptable = rep.schedulable and rep.protection_ok
        rows.append(
            [
                key,
                rep.schedulable,
                rep.protection_ok,
                len(getattr(rep, "under_protected", ())),
                acceptable,
            ]
        )
    report(
        "BASELINE — static configurations vs flexible scheme (Table 1 set)",
        format_table(
            ["design", "schedulable", "protects", "#under-prot", "acceptable"],
            rows,
        ),
    )

    statics = [out[str(k)] for k in StaticKind]
    assert not any(r.schedulable and r.protection_ok for r in statics)
    assert out["flexible"].schedulable and out["flexible"].protection_ok


def test_static_vs_flexible_acceptance_sweep(benchmark):
    """Acceptance rates over random mixed workloads (U_total = 1.5)."""

    def sweep():
        counts = {"all-ft": 0, "all-fs": 0, "all-nf": 0, "flexible": 0}
        n_sets = 25
        for seed in range(n_sets):
            rng = np.random.default_rng(seed)
            ts = generate_mixed_taskset(
                10, 1.5, rng, period_low=10, period_high=80,
                period_granularity=5.0,
            )
            out = compare_with_flexible(ts, "EDF", Overheads.uniform(0.02))
            for key, rep in out.items():
                if rep.schedulable and rep.protection_ok:
                    counts[key] += 1
        return counts, n_sets

    counts, n_sets = benchmark(sweep)
    rows = [[k, v, v / n_sets] for k, v in counts.items()]
    report(
        "BASELINE — acceptance rate across 25 random mixed sets (U=1.5)",
        format_table(["design", "accepted", "rate"], rows),
    )
    # The flexible scheme accepts strictly more than every static baseline.
    assert counts["flexible"] > max(counts["all-ft"], counts["all-fs"], counts["all-nf"])
    benchmark.extra_info.update(counts)
