"""Reporting helper shared by the benchmark modules.

pytest captures stdout at the file-descriptor level, so artifacts printed
during a test would vanish from ``pytest ... | tee bench_output.txt``.
Benchmarks therefore *register* their regenerated paper artifacts here, and
the conftest hook :func:`emit_reports` flushes them into the terminal
summary — after capture has ended — so every table/figure lands in the teed
output file.
"""

from __future__ import annotations

#: (title, body) pairs registered by benchmarks during the session.
REPORTS: list[tuple[str, str]] = []


def report(title: str, body: str) -> None:
    """Register a regenerated artifact for the end-of-session summary."""
    # A benchmark test body runs once, but guard against re-registration
    # (e.g. --benchmark-compare reruns) by title.
    for existing_title, _ in REPORTS:
        if existing_title == title:
            return
    REPORTS.append((title, body))


def emit_reports(write_line) -> None:
    """Write all registered artifacts through ``write_line`` (conftest hook)."""
    if not REPORTS:
        return
    bar = "=" * 78
    write_line("")
    write_line(bar)
    write_line("REGENERATED PAPER ARTIFACTS (tables, figures, ablations)")
    write_line(bar)
    for title, body in REPORTS:
        write_line("")
        write_line(bar)
        write_line(title)
        write_line(bar)
        for line in body.splitlines():
            write_line(line)
