"""Reporting helpers shared by the benchmark modules.

pytest captures stdout at the file-descriptor level, so artifacts printed
during a test would vanish from ``pytest ... | tee bench_output.txt``.
Benchmarks therefore *register* their regenerated paper artifacts here, and
the conftest hook :func:`emit_reports` flushes them into the terminal
summary — after capture has ended — so every table/figure lands in the teed
output file.

Every benchmark also leaves a machine-readable result behind:
:func:`write_bench_json` writes ``BENCH_<name>.json`` (into
``$REPRO_BENCH_DIR``, default the working directory) so CI and trend
tooling can diff runs without scraping terminal tables. The standalone
scripts call it from ``main()``; pytest-benchmark modules get one file per
module emitted automatically by the conftest terminal-summary hook.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

#: Bump when the BENCH_*.json layout changes.
BENCH_SCHEMA = 1

#: (title, body) pairs registered by benchmarks during the session.
REPORTS: list[tuple[str, str]] = []


def bench_dir() -> Path:
    """Where BENCH_*.json files land (``$REPRO_BENCH_DIR`` or the cwd)."""
    return Path(os.environ.get("REPRO_BENCH_DIR", "."))


def write_bench_json(
    name: str, *, config: "dict[str, Any] | None" = None, **metrics: Any
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``metrics`` is a flat mapping of measured values (rates, ratios,
    timings); ``config`` records the knobs that produced them so a result
    file is self-describing. Keys are sorted for stable diffs.
    """
    payload: dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "unix_time": round(time.time(), 3),
        "metrics": metrics,
    }
    if config:
        payload["config"] = config
    out = bench_dir() / f"BENCH_{name}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return out


def report(title: str, body: str) -> None:
    """Register a regenerated artifact for the end-of-session summary."""
    # A benchmark test body runs once, but guard against re-registration
    # (e.g. --benchmark-compare reruns) by title.
    for existing_title, _ in REPORTS:
        if existing_title == title:
            return
    REPORTS.append((title, body))


def emit_reports(write_line) -> None:
    """Write all registered artifacts through ``write_line`` (conftest hook)."""
    if not REPORTS:
        return
    bar = "=" * 78
    write_line("")
    write_line(bar)
    write_line("REGENERATED PAPER ARTIFACTS (tables, figures, ablations)")
    write_line(bar)
    for title, body in REPORTS:
        write_line("")
        write_line(bar)
        write_line(title)
        write_line(bar)
        for line in body.splitlines():
            write_line(line)
