"""Simulation validation of the Table 2 designs (exp id: sim-validate).

The analysis promises the designed quanta are sufficient; the discrete-event
platform simulation independently confirms it (zero misses under both the
synchronous and critical phasings), and conversely shows that starving one
mode's quantum produces deadline misses. Benchmarks simulator throughput.
"""

import pytest

from repro.core import PlatformConfig, SlotSchedule
from repro.model import Mode
from repro.sim import MulticoreSim, validate_design
from repro.viz import format_table

from bench_util import report


def test_sim_validates_design_b(benchmark, paper_part, config_b):
    horizon = config_b.period * 81  # two task hyperperiods

    result = benchmark(
        lambda: MulticoreSim(paper_part, config_b).run(horizon)
    )

    rows = [
        [proc, len(res.jobs), len(res.completed), len(res.misses)]
        for proc, res in sorted(result.processors.items())
    ]
    body = format_table(["processor", "jobs", "completed", "misses"], rows)
    body += f"\nhorizon = {horizon:.1f} ({81} cycles), total misses = {result.miss_count}"
    report("SIM VALIDATION — Table 2(b) design runs without misses", body)

    assert result.miss_count == 0
    benchmark.extra_info["jobs_simulated"] = sum(
        len(r.jobs) for r in result.processors.values()
    )


def test_sim_validates_design_c_and_phasings(benchmark, paper_part, config_c):
    rep = benchmark(
        lambda: validate_design(
            paper_part, config_c, horizon=config_c.period * 150
        )
    )
    report(
        "SIM VALIDATION — Table 2(c) design, both release phasings",
        f"miss counts by phasing: {rep.miss_counts}\n"
        f"supply domination: { {str(m): ok for m, ok in rep.supply_ok.items()} }",
    )
    assert rep.ok


def test_sim_detects_starved_quantum(benchmark, paper_part, config_b):
    # Falsification: shrink Q_FT far below minQ -> FT tasks must miss.
    s = config_b.schedule
    starved = PlatformConfig(
        SlotSchedule(
            s.period,
            {
                Mode.FT: s.quantum(Mode.FT) * 0.3,
                Mode.FS: s.quantum(Mode.FS),
                Mode.NF: s.quantum(Mode.NF),
            },
            s.overheads,
        ),
        "EDF",
    )

    result = benchmark(
        lambda: MulticoreSim(paper_part, starved).run(
            starved.period * 41, release_offsets="critical"
        )
    )
    report(
        "SIM FALSIFICATION — starving Q_FT to 30% causes deadline misses",
        f"misses by task: {result.misses_by_task()}",
    )
    assert result.miss_count > 0
    assert all(t.startswith("tau1") for t in result.misses_by_task())  # FT tasks
