"""Ablation: multi-quantum slots inside the design pipeline (future work).

Where ``bench_ablation_slot_splitting.py`` demonstrates the supply-level
effect, this bench closes the loop: the paper's own task set, designed with
the FS mode served by 1 vs 2 quanta per cycle. Splitting the slot that hosts
the short-period task (tau9, T = 4) relaxes the binding delay constraint and
extends the maximum feasible period — at the price of paying ``O_FS``
twice per cycle. Every design is re-validated by simulation.
"""

import pytest

from repro.core import Overheads, design_split_platform
from repro.model import Mode
from repro.sim import MulticoreSim
from repro.viz import format_table

from bench_util import report


def test_split_design_on_paper_set(benchmark, paper_part):
    overheads = Overheads.uniform(0.05)

    def run():
        out = []
        for k_fs in (1, 2):
            d = design_split_platform(
                paper_part, "EDF", overheads, {Mode.FS: k_fs}
            )
            sim = MulticoreSim(paper_part, d.schedule, "EDF").run(
                horizon=d.period * 40
            )
            out.append((k_fs, d, sim.miss_count))
        return out

    results = benchmark(run)

    rows = []
    for k_fs, d, misses in results:
        rows.append(
            [
                k_fs,
                d.period,
                d.schedule.usable(Mode.FS),
                d.schedule.delta(Mode.FS),
                d.schedule.pieces(Mode.FS) * 0.05 / 3 / d.period,
                misses,
            ]
        )
    table = format_table(
        ["k_FS", "max P", "Q̃_FS", "FS delay", "O_FS bandwidth", "sim misses"],
        rows,
    )
    table += (
        "\nSplitting the FS slot doubles its switch overhead but halves its\n"
        "supply delay; on the Table 1 set the binding constraint is tau9's\n"
        "short period (T=4), so the trade wins: the major period grows."
    )
    report("ABLATION — multi-quantum FS service in the design pipeline", table)

    (k1, d1, m1), (k2, d2, m2) = results
    assert m1 == 0 and m2 == 0
    assert d1.period == pytest.approx(2.966, abs=2e-3)  # k=1 = the paper design
    assert d2.period > d1.period * 1.1  # splitting extends the period
    benchmark.extra_info["P_k1"] = round(d1.period, 4)
    benchmark.extra_info["P_k2"] = round(d2.period, 4)
