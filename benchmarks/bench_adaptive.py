"""Adaptive refinement vs exhaustive grid: points spent to hit a CI target.

The adaptive point source (``repro campaign --strategy adaptive``) samples
every curve bin only until its Wilson 95% interval is narrower than the
``--ci-width`` target, so bins far from p=0.5 — most of a schedulability
curve — converge in a fraction of the replications an exhaustive grid
must budget for the worst case. This script runs a small weighted-preset
adaptive campaign, reports the per-round point spend, and compares the
total against the grid-equivalent budget: the same final bin set swept
uniformly at ``reps_for_width(0.5, ci)`` replications per bin (what a
grid must provision to *guarantee* the target everywhere), plus the same
static fault grid.

Standalone on purpose (no pytest-benchmark dependency), so CI can run it
as a smoke step and the table lands in the job log:

    PYTHONPATH=src python benchmarks/bench_adaptive.py --smoke

Exit code 2 when two same-seed runs diverge byte-for-byte (never
acceptable), 1 when the adaptive run fails to undercut the grid budget
or leaves bins short of the CI target.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.weighted import (
    weighted_adaptive_source,
    weighted_aggregator,
)
from repro.runner import reps_for_width, stream_campaign

from bench_util import write_bench_json

#: The smoke sweep: two utilizations far from the boundary, so every bin
#: converges fast and the grid-equivalent gap is the headline.
SMOKE_AXES = {
    "u_total": [0.8, 2.4],
    "n": [6],
    "period_hyperperiod": [720.0],
    "rep": [0, 1, 2],
    "rate": [0.02],
}
DEFAULT_AXES = {
    "u_total": [0.6, 1.2, 1.8, 2.4],
    "n": [6],
    "period_hyperperiod": [720.0],
    "rep": [0, 1, 2, 3],
    "rate": [0.02],
}


def run_once(axes, ci_width, workers, state_path):
    source = weighted_adaptive_source(axes, ci_width=ci_width)
    aggregator = weighted_aggregator()
    start = time.perf_counter()
    result = stream_campaign(
        source,
        aggregator,
        workers=workers,
        master_seed=3,
        state_path=state_path,
        on_error="store",
    )
    return result, time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ci-width", type=float, default=None, metavar="W",
        help="Wilson 95%% interval target per bin (default 0.4 for "
        "--smoke, 0.25 otherwise)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="process-pool size (default: 2)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast run for CI logs",
    )
    args = parser.parse_args(argv)
    axes = SMOKE_AXES if args.smoke else DEFAULT_AXES
    ci = args.ci_width if args.ci_width is not None else (
        0.4 if args.smoke else 0.25
    )

    print(
        f"adaptive refinement vs exhaustive grid — weighted preset, "
        f"ci-width {ci}, {args.workers} workers"
    )
    with tempfile.TemporaryDirectory() as tmp:
        digests = []
        for attempt in range(2):
            state = Path(tmp) / f"run{attempt}.json"
            result, elapsed = run_once(axes, ci, args.workers, state)
            digests.append(hashlib.sha256(state.read_bytes()).hexdigest())
        if digests[0] != digests[1]:
            print("FATAL: two same-seed adaptive runs diverged byte-for-byte")
            return 2
    stats = result.stats

    sched = [s for s in result.specs if s.experiment == "schedulability"]
    static = len(result.specs) - len(sched)
    bins = len(result.aggregator["weighted_feasible"].points)
    grid_equivalent = bins * reps_for_width(0.5, ci) + static

    print(f"{'round':>6}  {'points':>7}")
    for index, size in enumerate(stats.round_sizes):
        print(f"{index:>6}  {size:>7}")
    print(
        f"adaptive: {stats.total} points over {stats.rounds} round(s) "
        f"in {elapsed:.1f}s ({bins} bins, {static} static fault points); "
        f"bytes identical across reruns"
    )
    print(
        f"grid equivalent: {bins} bins x {reps_for_width(0.5, ci)} "
        f"worst-case reps + {static} static = {grid_equivalent} points "
        f"-> adaptive spent {stats.total / grid_equivalent:.1%}"
    )
    write_bench_json(
        "adaptive",
        config={"ci_width": ci, "workers": args.workers, "smoke": args.smoke},
        points=stats.total,
        rounds=stats.rounds,
        round_sizes=list(stats.round_sizes),
        elapsed_seconds=round(elapsed, 3),
        grid_equivalent_points=grid_equivalent,
        spend_ratio=round(stats.total / grid_equivalent, 4),
        open_bins=stats.open_bins,
        reruns_identical=True,
    )
    if stats.open_bins:
        print(f"FAIL: {stats.open_bins} bin(s) short of the ci target")
        return 1
    if stats.total >= grid_equivalent:
        print("FAIL: adaptive spent no fewer points than the grid budget")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
