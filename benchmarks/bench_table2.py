"""Table 2 — the two design solutions (rows a, b, c).

Regenerates the paper's design table for the Table 1 task set at
``O_tot = 0.05`` under EDF and asserts every printed value at the paper's
3-decimal precision. The benchmark times the full design pipeline (region
sweep + both goals), which since the campaign migration runs as three
``table2-*`` points through :func:`repro.runner.run_campaign`.
"""

import pytest

from repro.experiments import compute_table2, paper_reference

from bench_util import report


def test_table2_designs(benchmark):
    table = benchmark(compute_table2)

    report("TABLE 2 — possible design solutions (EDF, O_tot = 0.05)", table.render())

    ref = paper_reference()
    b, c = table.row_b, table.row_c

    # row (a)
    assert table.req_util_ft == pytest.approx(ref.req_util_ft, abs=5e-4)
    assert table.req_util_fs == pytest.approx(ref.req_util_fs, abs=5e-4)
    assert table.req_util_nf == pytest.approx(ref.req_util_nf, abs=5e-4)
    # row (b): min overhead bandwidth
    assert b.period == pytest.approx(ref.b_period, abs=1.5e-3)
    assert b.q_ft == pytest.approx(ref.b_q_ft, abs=1.5e-3)
    assert b.q_fs == pytest.approx(ref.b_q_fs, abs=1.5e-3)
    assert b.q_nf == pytest.approx(ref.b_q_nf, abs=1.5e-3)
    assert b.slack == pytest.approx(0.0, abs=1e-4)
    # row (c): max slack
    assert c.period == pytest.approx(ref.c_period, abs=2e-3)
    assert c.slack_ratio == pytest.approx(ref.c_slack_ratio, abs=2e-3)

    benchmark.extra_info.update(
        {
            "P_b(paper 2.966)": round(b.period, 4),
            "P_c(paper 0.855)": round(c.period, 4),
            "slack_ratio_c(paper 0.121)": round(c.slack_ratio, 4),
        }
    )
