"""Telemetry overhead and byte-identity: the recorder must be free when off
and cheap when on.

Runs the same schedulability sweep repeatedly with telemetry off and on
(with a trace sink attached, interleaved so machine drift hits both sides
equally) and checks the contract the subsystem is built around:

* **byte identity**: the aggregate JSON with telemetry on is bit-identical
  to the runs with it off (exit 2 on divergence — never acceptable);
* **overhead**: best-of-N wall-clock with telemetry on is within
  ``--max-overhead`` (default 3%) of the best telemetry-off run;
* **coverage**: the recorded trace's root span covers >= 95% of measured
  wall time, so ``repro profile`` output is trustworthy.

Standalone on purpose (no pytest-benchmark dependency), so CI can run it
as a smoke step:

    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke

The sweep runs inline (``workers=1``) because that is the worst case for
recorder overhead: every span/counter lands on the measured thread, with
no pool IPC to hide behind.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import telemetry
from repro.runner import Aggregator, grid_specs, mean_metric, stream_campaign
from repro.telemetry import Telemetry, TraceSink, load_trace

from bench_util import write_bench_json

#: A representative point: one schedulability evaluation (generate,
#: partition, slot design) — the workload real campaigns spend their time
#: on, so the measured overhead is the overhead users actually pay.
SCHED_AXES = {"u_total": [0.6, 1.2], "n": [6]}


def run_once(points: int) -> tuple[float, str]:
    """One inline sweep; returns (elapsed seconds, aggregate bytes)."""
    reps = max(1, points // len(SCHED_AXES["u_total"]))
    specs = grid_specs(
        "schedulability", {**SCHED_AXES, "rep": list(range(reps))}
    )
    aggregator = Aggregator([mean_metric("feasible", "feasible")])
    start = time.perf_counter()
    result = stream_campaign(specs, aggregator, workers=1)
    elapsed = time.perf_counter() - start
    return elapsed, result.aggregate_json()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--points", type=int, default=300,
        help="points per sweep (default: 300)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N repeats per configuration (default: 3)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast run for CI logs (80 points)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=0.03, metavar="X",
        help="fail when telemetry-on best time exceeds off by more than "
             "this fraction (default: 0.03)",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help="keep the recorded trace here (default: a temp dir)",
    )
    args = parser.parse_args(argv)
    points = 80 if args.smoke else args.points

    import tempfile
    from pathlib import Path

    trace_dir = (
        Path(args.trace_dir)
        if args.trace_dir
        else Path(tempfile.mkdtemp(prefix="bench_telemetry_"))
    )
    trace_path = trace_dir / "trace.ndjson"

    print(
        f"telemetry overhead — {points} schedulability points, "
        f"inline, best of {args.repeats}"
    )

    # untimed warm-up: imports, numpy caches and allocator pools all land
    # on this run instead of skewing the first measured off-run
    run_once(points)

    off_times: list[float] = []
    on_times: list[float] = []
    baseline_agg: str | None = None
    traced_agg: str | None = None
    for rep in range(args.repeats):
        # interleave off/on so machine drift hits both sides equally
        elapsed, agg = run_once(points)
        off_times.append(elapsed)
        if baseline_agg is None:
            baseline_agg = agg
        elif agg != baseline_agg:
            print("FATAL: telemetry-off reruns diverged (broken determinism)")
            return 2

        sink = TraceSink(trace_path, bench="telemetry", points=points)
        recorder = Telemetry(sink)
        previous = telemetry.activate(recorder)
        try:
            elapsed, agg = run_once(points)
        finally:
            telemetry.activate(previous)
            sink.close(recorder)
        on_times.append(elapsed)
        traced_agg = agg
        if agg != baseline_agg:
            print("FATAL: telemetry changed the aggregate bytes")
            return 2
        print(
            f"  rep {rep}: off {off_times[-1]:.3f}s / on {on_times[-1]:.3f}s"
        )

    best_off, best_on = min(off_times), min(on_times)
    overhead = best_on / best_off - 1.0
    print(
        f"best off {best_off:.3f}s, best on {best_on:.3f}s "
        f"-> overhead {overhead * 100:+.2f}%"
    )
    print("aggregates bit-identical with telemetry on and off")

    profile = load_trace(trace_path)
    coverage = profile.coverage()
    coverage_str = "n/a" if coverage is None else f"{coverage * 100:.1f}%"
    print(f"trace coverage of root span: {coverage_str}")

    write_bench_json(
        "telemetry",
        config={"points": points, "repeats": args.repeats},
        best_off_seconds=round(best_off, 4),
        best_on_seconds=round(best_on, 4),
        overhead_fraction=round(overhead, 4),
        coverage=None if coverage is None else round(coverage, 4),
        aggregates_identical=traced_agg == baseline_agg,
    )

    if coverage is None or coverage < 0.95:
        print(f"FAIL: trace coverage {coverage_str} below 95%")
        return 1
    if overhead > args.max_overhead:
        print(
            f"FAIL: telemetry overhead {overhead * 100:.2f}% exceeds "
            f"{args.max_overhead * 100:.1f}%"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
