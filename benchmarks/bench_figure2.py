"""Figure 2 — the mode-switch timeline of one major cycle.

Figure 2 is the paper's notation diagram (slots ``Q_k`` with trailing
overheads ``O_k`` inside one period ``P``). We regenerate it from a designed
configuration as the simulator's segment timeline, check the accounting
identities the figure encodes, and benchmark segment expansion.
"""

import pytest

from repro.model import MODE_ORDER, Mode
from repro.platform import ModeSwitchController, SegmentKind
from repro.viz import format_table

from bench_util import report


def test_figure2_slot_timeline(benchmark, config_b):
    ctrl = ModeSwitchController(config_b.schedule)
    segments = benchmark(lambda: list(ctrl.segments(config_b.period * 50)))

    one_cycle = [s for s in segments if s.cycle == 0]
    rows = [
        [f"[{s.start:.3f}, {s.end:.3f})", str(s.kind), str(s.mode or "-"),
         s.duration]
        for s in one_cycle
    ]
    body = format_table(["window", "kind", "mode", "length"], rows)
    body += (
        f"\nP = {config_b.period:.3f}; "
        f"Q̃_k + O_k sums + idle = period (Figure 2 identity)"
    )
    report("FIGURE 2 — switching between modes (one major cycle)", body)

    # Identities: segments tile the cycle exactly; FT -> FS -> NF order.
    assert sum(s.duration for s in one_cycle) == pytest.approx(config_b.period)
    usable_modes = [s.mode for s in one_cycle if s.kind is SegmentKind.USABLE]
    assert usable_modes == list(MODE_ORDER)
    for mode in Mode:
        usable = sum(
            s.duration
            for s in one_cycle
            if s.kind is SegmentKind.USABLE and s.mode is mode
        )
        assert usable == pytest.approx(config_b.schedule.usable(mode))
    benchmark.extra_info["segments_per_cycle"] = len(one_cycle)
