"""Fast-kernel analysis throughput: integer kernels vs the float path.

The integer kernels (``repro.analysis.kernels``) rescale a task set to an
exact integer timebase and run demand/QPA/minQ analysis in vectorised int64
arithmetic instead of scalar float loops. This script measures the analysis
throughput they buy on weighted-preset-shaped task sets (mixed modes,
hyperperiod-limited periods): per set one full pass of

* ``qpa_schedulable`` (dedicated EDF test),
* ``edf_schedulable_dedicated`` (Theorem-2 walk over the deadline set),
* ``QuantumCurve(ts, "EDF").evaluate`` over a 4001-point period grid
  (the Figure-4 style minQ sweep),

timed once with the kernels forced on and once forced off. The exactness
gate runs unconditionally: every verdict, every ``points_checked`` count
and every minQ curve must be *bit-identical* between the two passes, or the
script exits non-zero — the kernels are only allowed to be faster, never
different.

Standalone on purpose (no pytest-benchmark dependency), so CI can run it as
a smoke step and the throughput table lands in the job log:

    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke

``--smoke`` additionally streams a shrunk ``weighted`` campaign with the
kernels on and off, asserting byte-identical campaign JSON and a fast-path
share of at least 90% of computed points. The speedup gate is opt-in
because wall-clock ratios flake on loaded shared runners; run it locally
(``--min-speedup 10`` is the acceptance bar) rather than in CI.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.analysis import edf_schedulable_dedicated, kernels, qpa_schedulable
from repro.core import QuantumCurve
from repro.experiments.weighted import weighted_aggregator, weighted_specs
from repro.generators import generate_mixed_taskset
from repro.runner import stream_campaign

from bench_util import write_bench_json

#: minQ period grid of the per-set pass (Figure-4 style sweep).
PERIOD_GRID = np.linspace(0.5, 200.0, 4001)

#: Shrunk weighted-preset axes for the --smoke campaign comparison.
SMOKE_SCHED_AXES = {
    "u_total": [0.4, 1.2, 2.0],
    "n": [8],
    "period_hyperperiod": [3600.0],
    "rep": [0, 1],
}
SMOKE_FAULT_AXES = {"rate": [0.02], "u_total": [0.8], "rep": [0, 1]}


def make_tasksets(count: int, seed: int):
    """Weighted-preset-shaped sets: n=8, U=0.9, hyperperiod-limited 3600."""
    rng = np.random.default_rng(seed)
    return [
        generate_mixed_taskset(
            8,
            0.9,
            rng,
            period_method="hyperperiod-limited",
            period_hyperperiod=3600.0,
        )
        for _ in range(count)
    ]


def analysis_pass(tasksets) -> tuple[float, list[tuple]]:
    """One timed pass over every set; returns (elapsed, comparable results)."""
    results = []
    start = time.perf_counter()
    for ts in tasksets:
        qpa = qpa_schedulable(ts)
        edf = edf_schedulable_dedicated(ts)
        curve = np.asarray(QuantumCurve(ts, "EDF").evaluate(PERIOD_GRID))
        results.append((qpa, edf.schedulable, edf.points_checked, curve.tobytes()))
    return time.perf_counter() - start, results


def bench_analysis(count: int, seed: int) -> tuple[float, float, bool]:
    """Returns (fast sets/sec, slow sets/sec, results identical)."""
    tasksets = make_tasksets(count, seed)
    with kernels.kernels_forced(True):
        before = kernels.kernel_counters()
        fast_elapsed, fast_results = analysis_pass(tasksets)
        delta = kernels.counters_delta(before)
    with kernels.kernels_forced(False):
        slow_elapsed, slow_results = analysis_pass(tasksets)
    if delta["fast"] == 0:
        print("FATAL: the fast pass never selected the integer kernels")
        return 0.0, 0.0, False
    return (
        count / fast_elapsed,
        count / slow_elapsed,
        fast_results == slow_results,
    )


def smoke_campaign() -> int:
    """Shrunk weighted campaign, kernels on vs off: bytes + fast share."""
    specs = weighted_specs(SMOKE_SCHED_AXES, SMOKE_FAULT_AXES)
    runs = {}
    for enabled in (True, False):
        with kernels.kernels_forced(enabled):
            runs[enabled] = stream_campaign(
                specs, weighted_aggregator(), collect=True, on_error="store"
            )
    fast, slow = runs[True], runs[False]
    if fast.to_json() != slow.to_json():
        print("FATAL: weighted smoke campaign JSON differs with kernels on")
        return 2
    selections = fast.stats.kernel_fast + fast.stats.kernel_fallback
    share = fast.stats.kernel_fast / selections if selections else 0.0
    print(
        f"weighted smoke campaign: {len(specs)} points, byte-identical JSON; "
        f"fast share {100.0 * share:.1f}% "
        f"({fast.stats.kernel_fast}/{selections})"
    )
    if share < 0.9:
        print("FAIL: fast-path share below 90% on the weighted smoke preset")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sets", type=int, default=40,
        help="task sets per analysis pass (default: 40)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="generator seed (default: 0)"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small fast run for CI logs (8 sets + weighted campaign check)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="fail unless fast sets/sec >= X * float sets/sec",
    )
    args = parser.parse_args(argv)
    count = 8 if args.smoke else args.sets

    print(
        f"fast-kernel analysis throughput — {count} generated sets "
        f"(n=8, U=0.9, hyperperiod 3600), "
        f"{len(PERIOD_GRID)}-period minQ grid per set"
    )
    fast_rate, slow_rate, identical = bench_analysis(count, args.seed)
    if not identical:
        print("FATAL: fast and float analysis results diverge")
        return 2
    print(f"{'kernels':>8}  {'sets/sec':>9}")
    print(f"{'on':>8}  {fast_rate:>9.1f}")
    print(f"{'off':>8}  {slow_rate:>9.1f}")
    speedup = fast_rate / slow_rate
    print(f"speedup: {speedup:.1f}x; results bit-identical")
    write_bench_json(
        "kernels",
        config={"sets": count, "seed": args.seed, "smoke": args.smoke},
        sets_per_sec_fast=round(fast_rate, 2),
        sets_per_sec_float=round(slow_rate, 2),
        speedup=round(speedup, 3),
        results_identical=True,
    )

    if args.smoke:
        status = smoke_campaign()
        if status:
            return status
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: speedup {speedup:.1f}x below required "
            f"{args.min_speedup:.1f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
