"""Ablation: exact Lemma-1 supply vs the paper's linear bound (exp id: abl-exact).

The paper develops all design math on the linear bound ``Z'`` and notes the
exact analysis is "only tedious". This ablation implements it and measures
the quantum over-allocation the simplification costs, per mode and period.
"""

import pytest

from repro.experiments.ablations import exact_vs_linear_gap
from repro.viz import format_table

from bench_util import report


def test_exact_vs_linear_quantum_gap(benchmark, paper_part):
    rows = benchmark(
        lambda: exact_vs_linear_gap(paper_part, periods=(0.5, 1.0, 2.0, 2.966))
    )

    table = format_table(
        ["subset@period", "minQ linear", "minQ exact", "gap", "gap %"],
        [
            [r.label, r.minq_linear, r.minq_exact, r.gap, 100 * r.gap_ratio]
            for r in rows
        ],
    )
    worst = max(rows, key=lambda r: r.gap_ratio)
    table += (
        f"\nworst relative over-allocation: {worst.label} "
        f"({100 * worst.gap_ratio:.1f}%)"
    )
    report("ABLATION — exact supply vs linear bound (minQ over-allocation)", table)

    # Safety: the linear bound is conservative, never optimistic.
    assert all(r.minq_linear >= r.minq_exact - 1e-6 for r in rows)
    # And it does give something away somewhere (the bound is not tight).
    assert any(r.gap > 1e-4 for r in rows)
    benchmark.extra_info["worst_gap_pct"] = round(100 * worst.gap_ratio, 2)
